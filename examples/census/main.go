// Census: the paper's Dataset 2 scenario — adult-census-style records with
// uncorrelated random errors, where the quality rules are NOT given but
// *discovered* from the dirty data itself (constant CFDs at 5% support,
// following the paper's use of reference [9]). The example prints the
// discovered rules and repairs the instance with them.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"

	"gdr"
)

func main() {
	fmt.Println("generating Dataset 2 (census records, n=4000, 30% dirty)...")
	data := gdr.CensusData(gdr.DataConfig{N: 4000, Seed: 21})

	fmt.Printf("\ndiscovered %d constant CFDs from the dirty instance (5%% support); first 12:\n", len(data.Rules))
	for i, r := range data.Rules {
		if i >= 12 {
			break
		}
		fmt.Printf("  %s\n", r)
	}

	res, err := gdr.Run(gdr.StrategyGDR, data.Dirty, data.Truth, data.Rules, gdr.RunConfig{
		Budget: 400, Seed: 5, RecordEvery: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGDR with %d feedbacks: %.1f%% quality improvement, precision %.3f, recall %.3f\n",
		res.Verified, res.FinalImprovement, res.Precision, res.Recall)
	fmt.Printf("learner decided %d further updates without user involvement\n", res.LearnerDecisions)
	fmt.Println("\nbecause this dataset's errors are random (no learnable correlations),")
	fmt.Println("the learner helps less than on the hospital data — the paper's")
	fmt.Println("Dataset 2 observation.")
}
