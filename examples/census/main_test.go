package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the Dataset 2 example: rules must be discovered from
// the dirty instance and a GDR run must complete.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs discovery plus a full GDR run on n=4000")
	}
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "discovered ") {
		t.Fatalf("no discovery line:\n%s", out)
	}
	if !strings.Contains(out, "quality improvement") {
		t.Fatalf("no run summary:\n%s", out)
	}
}
