// Quickstart: guided repair of the paper's Figure 1 running example.
//
// Eight Customer tuples violate the CFDs φ1–φ5; we open a GDR session, rank
// the suggested-update groups by their VOI benefit, and play the expert user
// answering from the known-correct values.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"gdr"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	schema := gdr.MustSchema("Customer", []string{"Name", "STR", "CT", "STT", "ZIP"})
	db := gdr.NewDB(schema)
	rows := []gdr.Tuple{
		{"Alice", "Redwood Dr", "Michigan City", "IN", "46360"},
		{"Bob", "Oak St", "Westvile", "IN", "46360"},         // typo city
		{"Carol", "Pine Ave", "Michigan Cty", "IN", "46360"}, // typo city
		{"Dave", "Sherden RD", "Fort Wayne", "IN", "46391"},  // wrong zip
		{"Eve", "Sherden RD", "Fort Wayne", "IN", "46825"},
		{"Frank", "Sherden RD", "Fort Wayne", "IN", "46825"},
	}
	for _, r := range rows {
		db.MustInsert(r)
	}
	// The truth: what the expert knows.
	truth := db.Clone()
	truth.Set(1, "CT", "Michigan City")
	truth.Set(2, "CT", "Michigan City")
	truth.Set(3, "ZIP", "46825")

	rules := gdr.MustParseRules(`
phi1: ZIP -> CT, STT :: 46360 || Michigan City, IN
phi3: ZIP -> CT, STT :: 46825 || Fort Wayne, IN
phi5: STR, CT -> ZIP :: _, Fort Wayne || _
`)

	sess, err := gdr.NewSession(db, rules, gdr.SessionConfig{Seed: 1})
	if err != nil {
		return err
	}
	oracle := gdr.NewOracle(truth)
	fmt.Fprintf(w, "dirty tuples: %d, suggested updates: %d\n\n", sess.InitialDirtyCount(), sess.PendingCount())

	for sess.PendingCount() > 0 {
		groups := sess.Groups(gdr.OrderVOI, nil)
		if len(groups) == 0 {
			break
		}
		g := groups[0]
		fmt.Fprintf(w, "inspecting group %s (benefit %.3f, %d updates)\n", g.Key, g.Benefit, g.Size())
		for _, u := range g.Updates {
			if cur, ok := sess.Pending(u.Cell()); !ok || cur != u {
				continue
			}
			fb := oracle.Feedback(db, u)
			fmt.Fprintf(w, "  t%d.%s %q -> %q : %s\n", u.Tid, u.Attr, db.Get(u.Tid, u.Attr), u.Value, fb)
			sess.UserFeedback(u, fb)
		}
	}

	fmt.Fprintf(w, "\nremaining dirty tuples: %d, feedbacks used: %d\n", sess.Engine().DirtyCount(), oracle.Asked)
	fmt.Fprintln(w, "\nrepaired instance:")
	for tid := 0; tid < db.N(); tid++ {
		fmt.Fprintf(w, "  %v\n", db.Tuple(tid))
	}
	return nil
}
