package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: the Figure 1 instance must be
// fully repaired and the session converge.
func TestRun(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "remaining dirty tuples: 0") {
		t.Fatalf("instance not fully repaired:\n%s", out)
	}
	if !strings.Contains(out, "repaired instance:") {
		t.Fatalf("missing final table:\n%s", out)
	}
}
