package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the online-monitoring example: clean entries pass,
// dirty ones get on-the-spot suggestions.
func TestRun(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "✓ consistent with all rules") {
		t.Fatalf("clean entry not recognized:\n%s", out)
	}
	if !strings.Contains(out, "✗ suggestion:") || !strings.Contains(out, "→ applied") {
		t.Fatalf("no suggestion produced for a dirty entry:\n%s", out)
	}
	if !strings.Contains(out, "final state: 7 tuples") {
		t.Fatalf("unexpected final state:\n%s", out)
	}
}
