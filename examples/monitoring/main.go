// Monitoring: the online data-entry mode sketched in Section 3 of the paper
// — "GDR can be used in monitoring data entries and immediately suggesting
// updates during the data entry process". A session watches a growing
// relation; every inserted record is validated against the CFDs and, when
// it violates one, a repair suggestion is produced on the spot.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"gdr"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	schema := gdr.MustSchema("Customer", []string{"Name", "CT", "STT", "ZIP"})
	db := gdr.NewDB(schema)
	// Seed the store with a few clean records.
	for _, r := range []gdr.Tuple{
		{"Alice", "Michigan City", "IN", "46360"},
		{"Bob", "Westville", "IN", "46391"},
		{"Carol", "Fort Wayne", "IN", "46825"},
	} {
		db.MustInsert(r)
	}
	rules := gdr.MustParseRules(`
phi1: ZIP -> CT, STT :: 46360 || Michigan City, IN
phi3: ZIP -> CT, STT :: 46825 || Fort Wayne, IN
phi4: ZIP -> CT, STT :: 46391 || Westville, IN
`)
	sess, err := gdr.NewSession(db, rules, gdr.SessionConfig{Seed: 1})
	if err != nil {
		return err
	}

	entries := []gdr.Tuple{
		{"Dave", "Michigan City", "IN", "46360"},  // clean
		{"Eve", "Westvile", "IN", "46391"},        // typo city
		{"Frank", "Fort Wayne", "OH", "46825"},    // wrong state
		{"Grace", "Michigan City", "IN", "46825"}, // city/zip mismatch
	}
	for _, entry := range entries {
		tid, err := sess.Insert(entry)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "entered %v\n", entry)
		if !sess.Engine().IsDirty(tid) {
			fmt.Fprintln(w, "  ✓ consistent with all rules")
			continue
		}
		for _, attr := range db.Schema.Attrs {
			if u, ok := sess.Pending(gdr.CellKey{Tid: tid, Attr: attr}); ok {
				fmt.Fprintf(w, "  ✗ suggestion: %s %q -> %q (score %.2f)\n",
					attr, db.Get(tid, attr), u.Value, u.Score)
			}
		}
		// The operator accepts the top suggestion immediately.
		for _, attr := range db.Schema.Attrs {
			if u, ok := sess.Pending(gdr.CellKey{Tid: tid, Attr: attr}); ok {
				sess.UserFeedback(u, gdr.Confirm)
				fmt.Fprintf(w, "  → applied %s := %q\n", attr, u.Value)
				break
			}
		}
	}
	fmt.Fprintf(w, "\nfinal state: %d tuples, %d still dirty\n", db.N(), sess.Engine().DirtyCount())
	return nil
}
