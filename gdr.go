// Package gdr is a from-scratch Go implementation of Guided Data Repair
// (Yakout, Elmagarmid, Neville, Ouzzani, Ilyas — "Guided Data Repair",
// PVLDB 4(5), 2011): a human-in-the-loop framework that repairs a relational
// database against Conditional Functional Dependencies by ranking suggested
// updates with a value-of-information (VOI) benefit score, ordering them for
// the user with active learning, and letting per-attribute random-forest
// models take over labeling once they are confident.
//
// This package is the public façade: it re-exports the library's core types
// so applications depend on a single import path. The building blocks live
// in the internal packages (relation, cfd, repair, group, voi, learn, core,
// …) and are documented there.
//
// A minimal repair loop looks like:
//
//	db, _ := gdr.ReadCSVFile("dirty.csv")
//	rules := gdr.MustParseRules("zip: Zip -> City :: 46360 || Michigan City")
//	sess, _ := gdr.NewSession(db, rules, gdr.SessionConfig{})
//	for _, g := range sess.Groups(gdr.OrderVOI, nil) {
//		for _, u := range g.Updates {
//			// show u to the user, collect a Confirm/Reject/Retain answer
//			sess.UserFeedback(u, gdr.Confirm)
//		}
//	}
//
// or, with a ground-truth oracle simulating the user (how the paper
// evaluates), a single call:
//
//	res, _ := gdr.Run(gdr.StrategyGDR, dirty, truth, rules, gdr.RunConfig{Budget: 500})
package gdr

import (
	"io"
	"math/rand"

	"gdr/internal/cfd"
	"gdr/internal/cind"
	"gdr/internal/core"
	"gdr/internal/dataset"
	"gdr/internal/discovery"
	"gdr/internal/experiments"
	"gdr/internal/group"
	"gdr/internal/learn"
	"gdr/internal/md"
	"gdr/internal/metrics"
	"gdr/internal/oracle"
	"gdr/internal/relation"
	"gdr/internal/repair"
	"gdr/internal/server"
	"gdr/internal/snapshot"
)

// Relational substrate.
type (
	// Schema describes a relation: name plus ordered attributes.
	Schema = relation.Schema
	// Tuple is one row of attribute values.
	Tuple = relation.Tuple
	// DB is a mutable in-memory instance of one relation.
	DB = relation.DB
)

// NewSchema builds a schema; attribute names must be unique.
func NewSchema(name string, attrs []string) (*Schema, error) { return relation.NewSchema(name, attrs) }

// MustSchema is NewSchema that panics on error.
func MustSchema(name string, attrs []string) *Schema { return relation.MustSchema(name, attrs) }

// NewDB returns an empty instance over the schema.
func NewDB(s *Schema) *DB { return relation.NewDB(s) }

// ReadCSV loads a relation from CSV (first row is the header).
func ReadCSV(r io.Reader, name string) (*DB, error) { return relation.ReadCSV(r, name) }

// ReadCSVFile loads a relation from a CSV file.
func ReadCSVFile(path string) (*DB, error) { return relation.ReadCSVFile(path) }

// Data-quality rules.
type (
	// CFD is a conditional functional dependency in normal form.
	CFD = cfd.CFD
)

// Wildcard is the '−' pattern entry: any value matches.
const Wildcard = cfd.Wildcard

// ParseRules reads rules from r, one per line, in the format
// "name: A, B -> C :: p1, p2 || q". See internal/cfd for details.
func ParseRules(r io.Reader) ([]*CFD, error) { return cfd.Parse(r) }

// MustParseRules parses rules from a string and panics on error.
func MustParseRules(text string) []*CFD { return cfd.MustParse(text) }

// DiscoverRules mines constant CFDs from an instance with the given support
// threshold (fraction of tuples), in the spirit of the paper's reference [9].
func DiscoverRules(db *DB, minSupport float64) []*CFD {
	return discovery.ConstantCFDs(db, discovery.Options{MinSupport: minSupport})
}

// Suggested updates and feedback.
type (
	// Update is a suggested repair ⟨t, A, v, s⟩.
	Update = repair.Update
	// CellKey addresses one cell (tuple id, attribute).
	CellKey = repair.CellKey
	// Feedback is a confirm/reject/retain decision.
	Feedback = repair.Feedback
	// Group is a set of updates sharing (attribute, suggested value).
	Group = group.Group
	// GroupKey identifies a group.
	GroupKey = group.Key
)

// The three feedback answers of the paper's Section 4.2.
const (
	Confirm = repair.Confirm
	Reject  = repair.Reject
	Retain  = repair.Retain
)

// Sessions (the GDR framework of Figure 2).
type (
	// Session is one guided-repair session.
	Session = core.Session
	// SessionConfig tunes a session; the zero value uses the paper's
	// defaults (k = 10 trees, ns = 5, …).
	SessionConfig = core.Config
	// Order selects the group ranking policy.
	Order = core.Order
)

// Group ranking orders.
const (
	OrderVOI    = core.OrderVOI
	OrderGreedy = core.OrderGreedy
	OrderRandom = core.OrderRandom
)

// NewSession builds a session over db (mutated in place as repairs apply)
// and generates the initial suggested updates.
func NewSession(db *DB, rules []*CFD, cfg SessionConfig) (*Session, error) {
	return core.NewSession(db, rules, cfg)
}

// Durable sessions: a session's complete state — the dictionary-encoded
// instance, rules, feedback bookkeeping and trained committees — can be
// snapshotted to a versioned binary format and restored later (in another
// process, or on another node), resuming byte-identically.
type (
	// SessionState is the complete serializable state of a Session.
	SessionState = core.SessionState
)

// SnapshotFormatVersion is the binary snapshot format this build writes
// and reads.
const SnapshotFormatVersion = snapshot.FormatVersion

// WriteSnapshot serializes a session (with a display name) to w in the
// versioned binary snapshot format.
func WriteSnapshot(w io.Writer, name string, sess *Session) error {
	return snapshot.Write(w, name, sess)
}

// ReadSnapshot rebuilds a session from a snapshot produced by
// WriteSnapshot (or by gdrd's POST .../snapshot endpoint). The restored
// session produces byte-identical suggestions, rankings and exports from
// the snapshot point on.
func ReadSnapshot(r io.Reader) (name string, sess *Session, err error) {
	return snapshot.Read(r)
}

// RestoreSession rebuilds a session from an exported state (the in-memory
// form; use ReadSnapshot for serialized bytes).
func RestoreSession(st *SessionState) (*Session, error) { return core.RestoreSession(st) }

// Session introspection (what the serving tier reports per tenant).
type (
	// SessionStats is a point-in-time session snapshot: suggestion
	// backlog, violation counts and repair activity.
	SessionStats = core.Stats
	// ModelStat describes one per-attribute learner: training volume,
	// accuracy and whether the user would delegate to it.
	ModelStat = core.ModelStat
)

// Serving (the gdrd subsystem): embed the multi-tenant HTTP service in your
// own binary. The daemon in cmd/gdrd is a thin wrapper around this.
type (
	// RepairServer is the multi-tenant guided-repair HTTP service.
	RepairServer = server.Server
	// RepairServerConfig tunes a RepairServer; the zero value serves with
	// sane defaults.
	RepairServerConfig = server.Config
)

// NewRepairServer builds the HTTP service; mount NewRepairServer(cfg).Handler()
// on any mux or http.Server.
func NewRepairServer(cfg RepairServerConfig) *RepairServer { return server.New(cfg) }

// Strategies and simulated evaluation.
type (
	// Strategy names a repair-driving policy from the paper's Section 5.
	Strategy = core.Strategy
	// RunConfig parameterizes a simulated run.
	RunConfig = core.RunConfig
	// Result summarizes a simulated run.
	Result = core.Result
	// Point is one sample of a run's quality trajectory.
	Point = core.Point
)

// The evaluated strategies.
const (
	StrategyGDR            = core.StrategyGDR
	StrategyGDRNoLearning  = core.StrategyGDRNoLearning
	StrategyGDRSLearning   = core.StrategyGDRSLearning
	StrategyActiveLearning = core.StrategyActiveLearning
	StrategyGreedy         = core.StrategyGreedy
	StrategyRandom         = core.StrategyRandom
	StrategyHeuristic      = core.StrategyHeuristic
)

// Run executes one strategy on a copy of dirty, answering feedback from the
// ground truth, and returns the quality trajectory — the paper's evaluation
// protocol.
func Run(st Strategy, dirty, truth *DB, rules []*CFD, rc RunConfig) (*Result, error) {
	return core.Run(st, dirty, truth, rules, rc)
}

// Oracle simulates the expert user from a ground-truth instance.
type Oracle = oracle.Oracle

// NewOracle builds a simulated user over the ground truth.
func NewOracle(truth *DB) *Oracle { return oracle.New(truth) }

// Quality and accuracy metrics.
type (
	// Quality measures the Eq. 3 loss against a ground truth.
	Quality = metrics.Quality
	// Accuracy measures repair precision/recall.
	Accuracy = metrics.Accuracy
)

// Learning substrate.
type (
	// ForestConfig tunes the per-attribute random forests.
	ForestConfig = learn.Config
	// Label is a predicted feedback class.
	Label = learn.Label
	// Votes is a committee vote distribution.
	Votes = learn.Votes
)

// Datasets and experiments (the paper's Section 5 workloads).
type (
	// Data bundles a workload: truth, dirty copy and rules.
	Data = dataset.Data
	// DataConfig controls workload generation.
	DataConfig = dataset.Config
	// Figure is a reproduced paper figure (labeled series).
	Figure = experiments.Figure
	// FigureConfig parameterizes figure reproduction.
	FigureConfig = experiments.Config
)

// HospitalData generates the Dataset 1 substitute (correlated recurrent
// errors, widely varying group sizes).
func HospitalData(cfg DataConfig) *Data { return dataset.Hospital(cfg) }

// CensusData generates the Dataset 2 substitute (uncorrelated random
// errors; rules discovered from the dirty data at 5% support).
func CensusData(cfg DataConfig) *Data { return dataset.Census(cfg) }

// Figure3 reproduces Figure 3 (ranking strategies) on a dataset.
func Figure3(d *Data, cfg FigureConfig) (Figure, error) { return experiments.Figure3(d, cfg) }

// Figure4 reproduces Figure 4 (overall evaluation) on a dataset.
func Figure4(d *Data, cfg FigureConfig) (Figure, error) { return experiments.Figure4(d, cfg) }

// Figure5 reproduces Figure 5 (precision/recall vs effort) on a dataset.
func Figure5(d *Data, cfg FigureConfig) (Figure, error) { return experiments.Figure5(d, cfg) }

// ShuffleGroups is a helper for custom drivers that want the Random
// baseline's behavior.
func ShuffleGroups(gs []*Group, rng *rand.Rand) {
	rng.Shuffle(len(gs), func(i, j int) { gs[i], gs[j] = gs[j], gs[i] })
}

// Rule-ranking extension (the authors' DBRank workshop paper, ref [21]):
// Session.RankedRules orders rules by weighted violation mass and
// Session.FocusTopRules narrows an interactive session to the dirty tuples
// of the most valuable rules; Session.RefocusAll widens it again. These are
// methods on Session — see the core package for details.

// Future-work rule types (Section 7 of the paper), implemented as checkers
// whose suggestions can be fed into a session as ordinary updates.
type (
	// CIND is a conditional inclusion dependency (referential rule).
	CIND = cind.CIND
	// CINDChecker detects dangling references and suggests existing keys.
	CINDChecker = cind.Checker
	// CINDViolation is one dangling reference.
	CINDViolation = cind.Violation
	// MD is a matching dependency (similarity-conditioned identification).
	MD = md.MD
	// MDChecker detects matching pairs with diverging identified values.
	MDChecker = md.Checker
	// MDViolation is one violating pair.
	MDViolation = md.Violation
)

// NewCIND builds a conditional inclusion dependency L[lhs; lhsCond] ⊆
// R[rhs; rhsCond].
func NewCIND(id string, lhs, rhs []string, lhsCond, rhsCond map[string]string) (*CIND, error) {
	return cind.New(id, lhs, rhs, lhsCond, rhsCond)
}

// NewCINDChecker builds a checker from the referencing relation into the
// referenced one.
func NewCINDChecker(left, right *DB, rules []*CIND) (*CINDChecker, error) {
	return cind.NewChecker(left, right, rules)
}

// NewMD builds a matching dependency [simAttr ≈threshold] → [matchAttr ⇌].
func NewMD(id, simAttr string, threshold float64, matchAttr string) (*MD, error) {
	return md.New(id, simAttr, threshold, matchAttr)
}

// NewMDChecker builds a matching-dependency checker over one relation.
func NewMDChecker(db *DB, rules []*MD) (*MDChecker, error) {
	return md.NewChecker(db, rules)
}
