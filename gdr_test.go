package gdr_test

import (
	"bytes"
	"strings"
	"testing"

	"gdr"
)

// TestFacadeEndToEnd exercises the whole public API surface the way a
// downstream application would: build an instance, parse rules, open a
// session, drive feedback by hand, and check the database converges.
func TestFacadeEndToEnd(t *testing.T) {
	schema := gdr.MustSchema("Customer", []string{"CT", "STT", "ZIP"})
	db := gdr.NewDB(schema)
	db.MustInsert(gdr.Tuple{"Michigan City", "IN", "46360"})
	db.MustInsert(gdr.Tuple{"Westvile", "IN", "46360"})
	db.MustInsert(gdr.Tuple{"Michigan Cty", "IN", "46360"})
	rules := gdr.MustParseRules("phi1: ZIP -> CT, STT :: 46360 || Michigan City, IN")

	sess, err := gdr.NewSession(db, rules, gdr.SessionConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sess.InitialDirtyCount() != 2 {
		t.Fatalf("initial dirty = %d", sess.InitialDirtyCount())
	}
	gs := sess.Groups(gdr.OrderVOI, nil)
	if len(gs) == 0 {
		t.Fatal("no groups")
	}
	for _, g := range gs {
		for _, u := range g.Updates {
			if cur, ok := sess.Pending(u.Cell()); !ok || cur != u {
				continue
			}
			sess.UserFeedback(u, gdr.Confirm)
		}
	}
	if sess.Engine().DirtyCount() != 0 {
		t.Fatalf("still dirty: %d", sess.Engine().DirtyCount())
	}
	if db.Get(1, "CT") != "Michigan City" || db.Get(2, "CT") != "Michigan City" {
		t.Fatalf("cities not repaired: %q %q", db.Get(1, "CT"), db.Get(2, "CT"))
	}
}

func TestFacadeSimulatedRun(t *testing.T) {
	d := gdr.HospitalData(gdr.DataConfig{N: 400, Seed: 9})
	res, err := gdr.Run(gdr.StrategyGDR, d.Dirty, d.Truth, d.Rules, gdr.RunConfig{Budget: 50, Seed: 2, RecordEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != gdr.StrategyGDR || res.Verified > 50 {
		t.Fatalf("result: %+v", res)
	}
}

func TestFacadeDiscoveryAndCSV(t *testing.T) {
	d := gdr.CensusData(gdr.DataConfig{N: 500, Seed: 3})
	rules := gdr.DiscoverRules(d.Dirty, 0.05)
	if len(rules) == 0 {
		t.Fatal("no rules discovered")
	}
	var sb strings.Builder
	if err := d.Dirty.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := gdr.ReadCSV(strings.NewReader(sb.String()), "Adult")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.Dirty.N() {
		t.Fatalf("round trip: %d vs %d", back.N(), d.Dirty.N())
	}
}

// TestFacadeFigureWorkersDeterminism exercises the public parallel knob:
// the same seed must render byte-identical figures whether the harness runs
// serially or on an 8-worker pool.
func TestFacadeFigureWorkersDeterminism(t *testing.T) {
	render := func(workers int) string {
		d := gdr.HospitalData(gdr.DataConfig{N: 400, Seed: 13})
		fig, err := gdr.Figure3(d, gdr.FigureConfig{N: 400, Seed: 13, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := fig.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if serial, parallel := render(1), render(8); serial != parallel {
		t.Fatalf("figure differs between Workers=1 and Workers=8:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestFacadeOracle(t *testing.T) {
	d := gdr.HospitalData(gdr.DataConfig{N: 200, Seed: 4})
	o := gdr.NewOracle(d.Truth)
	// Any suggestion of the true value is confirmed.
	tid := 0
	u := gdr.Update{Tid: tid, Attr: "City", Value: d.Truth.Get(tid, "City")}
	if d.Dirty.Get(tid, "City") == u.Value {
		u = gdr.Update{Tid: tid, Attr: "Zip", Value: "00000"}
		if fb := o.Feedback(d.Dirty, u); fb != gdr.Retain {
			t.Fatalf("feedback = %v, want retain", fb)
		}
		return
	}
	if fb := o.Feedback(d.Dirty, u); fb != gdr.Confirm {
		t.Fatalf("feedback = %v, want confirm", fb)
	}
}

// TestFacadeSnapshotRoundTrip drives a session partway, snapshots it
// through the public API, restores it, and checks the restored session
// exports the same instance and continues serving suggestions.
func TestFacadeSnapshotRoundTrip(t *testing.T) {
	d := gdr.HospitalData(gdr.DataConfig{N: 120, Seed: 6})
	sess, err := gdr.NewSession(d.Dirty.Clone(), d.Rules, gdr.SessionConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range sess.Groups(gdr.OrderVOI, nil)[:1] {
		for _, u := range g.Updates {
			if cur, ok := sess.Pending(u.Cell()); ok && cur == u {
				if d.Truth.Get(u.Tid, u.Attr) == u.Value {
					sess.UserFeedback(u, gdr.Confirm)
				} else {
					sess.UserFeedback(u, gdr.Reject)
				}
			}
		}
	}
	var snap bytes.Buffer
	if err := gdr.WriteSnapshot(&snap, "facade", sess); err != nil {
		t.Fatal(err)
	}
	name, restored, err := gdr.ReadSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if name != "facade" {
		t.Fatalf("name %q", name)
	}
	var a, b bytes.Buffer
	if err := sess.DB().WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := restored.DB().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("restored session exports a different instance")
	}
	if got, want := restored.PendingCount(), sess.PendingCount(); got != want {
		t.Fatalf("pending %d, want %d", got, want)
	}
	if gdr.SnapshotFormatVersion < 1 {
		t.Fatal("snapshot format version must be positive")
	}
}
