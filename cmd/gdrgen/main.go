// Command gdrgen materializes the experimental workloads as files, so the
// gdr CLI (and any external tool) can consume them:
//
//	gdrgen -dataset 1 -n 20000 -dir ./data
//
// writes dirty.csv, truth.csv and rules.txt into the directory. Dataset 2's
// rules are discovered from the dirty instance at 5% support, exactly as in
// the paper's Appendix B.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gdr"
)

func main() {
	var (
		ds   = flag.Int("dataset", 1, "1 = hospital (Dataset 1), 2 = census (Dataset 2)")
		n    = flag.Int("n", 20000, "number of records")
		seed = flag.Int64("seed", 7, "random seed")
		rate = flag.Float64("dirty", 0.3, "fraction of perturbed tuples")
		dir  = flag.String("dir", ".", "output directory")
	)
	flag.Parse()
	if err := run(*ds, *n, *seed, *rate, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "gdrgen:", err)
		os.Exit(1)
	}
}

func run(ds, n int, seed int64, rate float64, dir string) error {
	cfg := gdr.DataConfig{N: n, Seed: seed, DirtyRate: rate}
	var data *gdr.Data
	switch ds {
	case 1:
		data = gdr.HospitalData(cfg)
	case 2:
		data = gdr.CensusData(cfg)
	default:
		return fmt.Errorf("unknown dataset %d", ds)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := data.Dirty.WriteCSVFile(filepath.Join(dir, "dirty.csv")); err != nil {
		return err
	}
	if err := data.Truth.WriteCSVFile(filepath.Join(dir, "truth.csv")); err != nil {
		return err
	}
	rf, err := os.Create(filepath.Join(dir, "rules.txt"))
	if err != nil {
		return err
	}
	for _, r := range data.Rules {
		if _, err := fmt.Fprintln(rf, r.String()); err != nil {
			rf.Close()
			return err
		}
	}
	if err := rf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s dataset (n=%d, %d rules) to %s\n", data.Name, n, len(data.Rules), dir)
	return nil
}
