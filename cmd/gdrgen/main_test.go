package main

import (
	"os"
	"path/filepath"
	"testing"

	"gdr"
)

func TestGenerateWritesWorkload(t *testing.T) {
	dir := t.TempDir()
	if err := run(1, 300, 7, 0.3, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"dirty.csv", "truth.csv", "rules.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	// The written files must round-trip through the library.
	dirty, err := gdr.ReadCSVFile(filepath.Join(dir, "dirty.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if dirty.N() != 300 {
		t.Fatalf("dirty has %d rows", dirty.N())
	}
	rf, err := os.Open(filepath.Join(dir, "rules.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	rules, err := gdr.ParseRules(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules written")
	}
	// Rules must validate against the written schema.
	if _, err := gdr.NewSession(dirty, rules, gdr.SessionConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateCensus(t *testing.T) {
	dir := t.TempDir()
	if err := run(2, 1500, 7, 0.3, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "rules.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateUnknownDataset(t *testing.T) {
	if err := run(9, 10, 1, 0.3, t.TempDir()); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}
