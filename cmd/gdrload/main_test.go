package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSelfHostedLoadRun boots an in-process server and replays a small
// multi-session load against it — the CI bench-smoke path.
func TestSelfHostedLoadRun(t *testing.T) {
	var out bytes.Buffer
	err := run("", true /*selfhost*/, 3 /*sessions*/, 6 /*users*/, 6, /*rounds*/
		120 /*n*/, 1 /*dataset*/, 42 /*seed*/, 2 /*workers*/, true /*sweep*/, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Config.Sessions != 3 || rep.Setup.SessionsOpened != 3 {
		t.Fatalf("sessions: %+v", rep)
	}
	if rep.Rounds == 0 || rep.Items == 0 || rep.Applied == 0 {
		t.Fatalf("no load driven: %+v", rep)
	}
	if rep.Throughput.ItemsPerSec <= 0 {
		t.Fatalf("throughput: %+v", rep.Throughput)
	}
	for _, op := range []string{"groups", "updates", "feedback"} {
		s, ok := rep.Latency[op]
		if !ok || s.Count == 0 || s.P50 <= 0 || s.P99 < s.P50 {
			t.Fatalf("latency summary for %s: %+v", op, s)
		}
	}
	if len(rep.Sessions) != 3 {
		t.Fatalf("outcomes: %+v", rep.Sessions)
	}
	for _, o := range rep.Sessions {
		if o.Applied == 0 {
			t.Fatalf("session %d made no progress: %+v", o.Index, o)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run("", true, 0, 1, 1, 50, 1, 1, 1, false, &out); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if err := run("", true, 1, 1, 1, 50, 3, 1, 1, false, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
