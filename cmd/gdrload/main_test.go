package main

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestSelfHostedLoadRun boots an in-process server and replays a small
// multi-session load against it — the CI bench-smoke path.
func TestSelfHostedLoadRun(t *testing.T) {
	var out bytes.Buffer
	err := run(runConfig{
		selfhost: true, sessions: 3, users: 6, rounds: 6,
		n: 120, ds: 1, seed: 42, workers: 2, sweep: true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Config.Sessions != 3 || rep.Setup.SessionsOpened != 3 {
		t.Fatalf("sessions: %+v", rep)
	}
	if rep.Rounds == 0 || rep.Items == 0 || rep.Applied == 0 {
		t.Fatalf("no load driven: %+v", rep)
	}
	if rep.Throughput.ItemsPerSec <= 0 {
		t.Fatalf("throughput: %+v", rep.Throughput)
	}
	for _, op := range []string{"groups", "updates", "feedback"} {
		s, ok := rep.Latency[op]
		if !ok || s.Count == 0 || s.P50 <= 0 || s.P99 < s.P50 {
			t.Fatalf("latency summary for %s: %+v", op, s)
		}
	}
	if len(rep.Sessions) != 3 {
		t.Fatalf("outcomes: %+v", rep.Sessions)
	}
	for _, o := range rep.Sessions {
		if o.Applied == 0 {
			t.Fatalf("session %d made no progress: %+v", o.Index, o)
		}
	}
}

// TestProxyClusterLoadRun is the acceptance drive for -proxy mode: a
// 3-node in-process cluster with one node abruptly killed mid-run. Every
// tenant must still finish 100% repaired (no session lost to the crash),
// and the report must carry the per-node distribution.
func TestProxyClusterLoadRun(t *testing.T) {
	var out bytes.Buffer
	err := run(runConfig{
		proxyN: 3, kill: true, sessions: 4, users: 8, rounds: 200,
		n: 120, ds: 1, seed: 42, workers: 4, sweep: true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Cluster == nil {
		t.Fatal("proxy mode produced no cluster report")
	}
	if rep.Cluster.Nodes != 3 || len(rep.Cluster.PerNode) != 3 {
		t.Fatalf("cluster distribution: %+v", rep.Cluster)
	}
	if rep.Cluster.KilledNode == "" {
		t.Fatal("no node was killed mid-drive")
	}
	live, requests := 0, int64(0)
	for _, nl := range rep.Cluster.PerNode {
		if nl.Live {
			live++
		}
		requests += nl.Requests
		if nl.URL == rep.Cluster.KilledNode && nl.Live {
			t.Fatalf("killed node %s still on the ring", nl.URL)
		}
	}
	if live != 2 {
		t.Fatalf("live nodes after kill = %d, want 2", live)
	}
	if requests == 0 {
		t.Fatal("proxy forwarded no requests")
	}
	if rep.Cluster.Recovered == 0 && rep.Cluster.Migrations == 0 {
		t.Fatal("the crash triggered neither recovery nor migration")
	}
	// The acceptance bar: every tenant drove its repair to completion
	// despite the crash — the suggestion queue is fully drained (an
	// uncrashed single-node run of this workload ends the same way, with
	// ~85-96% of cells cleaned and the remainder beyond the candidate
	// generator), and nobody lost enough state to stall below that band.
	if len(rep.Sessions) != 4 {
		t.Fatalf("outcomes: %+v", rep.Sessions)
	}
	for _, o := range rep.Sessions {
		if o.Pending != 0 {
			t.Fatalf("session %d still has pending suggestions: %+v", o.Index, o)
		}
		if o.Applied == 0 || o.CleanedPct < 80 {
			t.Fatalf("session %d lost repair progress to the crash: %+v", o.Index, o)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run(runConfig{selfhost: true, users: 1, rounds: 1, n: 50, ds: 1, seed: 1, workers: 1}, &out); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if err := run(runConfig{selfhost: true, sessions: 1, users: 1, rounds: 1, n: 50, ds: 3, seed: 1, workers: 1}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run(runConfig{selfhost: true, proxyN: 2, sessions: 1, users: 1, rounds: 1, n: 50, ds: 1, seed: 1, workers: 1}, &out); err == nil {
		t.Fatal("-selfhost together with -proxy accepted")
	}
	if err := run(runConfig{proxyN: 1, kill: true, sessions: 1, users: 1, rounds: 1, n: 50, ds: 1, seed: 1, workers: 1}, &out); err == nil {
		t.Fatal("-kill with a single-node cluster accepted")
	}
}

func TestBackoffDelay(t *testing.T) {
	// No jitter, no hint: half the exponential span.
	if d := backoffDelay(0, 0, 0); d != retryBase/2 {
		t.Fatalf("attempt 0: %s, want %s", d, retryBase/2)
	}
	if d := backoffDelay(3, 0, 0); d != (retryBase<<3)/2 {
		t.Fatalf("attempt 3: %s, want %s", d, (retryBase<<3)/2)
	}
	// Full jitter stays inside the span.
	if d := backoffDelay(0, 0, 0.999); d <= retryBase/2 || d >= retryBase {
		t.Fatalf("jittered attempt 0: %s, want in (%s, %s)", d, retryBase/2, retryBase)
	}
	// Deep attempts cap (including the shift-overflow regime).
	for _, attempt := range []int{10, 40, 80} {
		if d := backoffDelay(attempt, 0, 0); d != retryCap/2 {
			t.Fatalf("attempt %d: %s, want capped %s", attempt, d, retryCap/2)
		}
		if d := backoffDelay(attempt, 0, 0.999); d > retryCap {
			t.Fatalf("attempt %d jittered: %s exceeds cap %s", attempt, d, retryCap)
		}
	}
	// The server's Retry-After hint is a floor.
	if d := backoffDelay(0, 2*time.Second, 0.5); d != 2*time.Second {
		t.Fatalf("Retry-After floor: %s, want 2s", d)
	}
	// ...but a longer computed backoff is kept.
	if d := backoffDelay(40, time.Second, 0); d != retryCap/2 {
		t.Fatalf("hint below curve: %s, want %s", d, retryCap/2)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"1":    time.Second,
		" 3 ":  3 * time.Second,
		"":     0,
		"soon": 0,
		"-2":   0,
		"1.5":  0,
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", h, got, want)
		}
	}
}

func TestParseServerTiming(t *testing.T) {
	got := parseServerTiming(`admit;dur=0.120, queue;dur=3.5;desc="actor queue", exec;dur="12.25"`)
	want := map[string]float64{"admit": 0.000120, "queue": 0.0035, "exec": 0.01225}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for stage, secs := range want {
		if d := got[stage] - secs; d > 1e-12 || d < -1e-12 {
			t.Errorf("%s = %v, want %v", stage, got[stage], secs)
		}
	}
	for name, h := range map[string]string{
		"empty":       "",
		"no dur":      `cache;desc="hit", cpu`,
		"garbage dur": "db;dur=fast",
		"only commas": ", ,",
	} {
		if got := parseServerTiming(h); got != nil {
			t.Errorf("%s: parseServerTiming(%q) = %v, want nil", name, h, got)
		}
	}
	// A malformed entry must not poison the valid ones around it.
	got = parseServerTiming("bad;dur=x, good;dur=1000")
	if len(got) != 1 || got["good"] != 1.0 {
		t.Errorf("mixed header parsed to %v", got)
	}
}

func TestRecordServerTiming(t *testing.T) {
	lc := newLoadClient(nil, "", 1)
	lc.recordServerTiming("queue;dur=2.0, exec;dur=8.0")
	lc.recordServerTiming("queue;dur=4.0")
	lc.recordServerTiming("") // no header: nothing recorded
	summ := lc.stages.summarize()
	if q, ok := summ["queue"]; !ok || q.Count != 2 {
		t.Fatalf("queue summary = %+v", summ)
	}
	if e, ok := summ["exec"]; !ok || e.Count != 1 {
		t.Fatalf("exec summary = %+v", summ)
	}
}
