package main

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestSelfHostedLoadRun boots an in-process server and replays a small
// multi-session load against it — the CI bench-smoke path.
func TestSelfHostedLoadRun(t *testing.T) {
	var out bytes.Buffer
	err := run("", "" /*key*/, true /*selfhost*/, 3 /*sessions*/, 6 /*users*/, 6, /*rounds*/
		120 /*n*/, 1 /*dataset*/, 42 /*seed*/, 2 /*workers*/, true /*sweep*/, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Config.Sessions != 3 || rep.Setup.SessionsOpened != 3 {
		t.Fatalf("sessions: %+v", rep)
	}
	if rep.Rounds == 0 || rep.Items == 0 || rep.Applied == 0 {
		t.Fatalf("no load driven: %+v", rep)
	}
	if rep.Throughput.ItemsPerSec <= 0 {
		t.Fatalf("throughput: %+v", rep.Throughput)
	}
	for _, op := range []string{"groups", "updates", "feedback"} {
		s, ok := rep.Latency[op]
		if !ok || s.Count == 0 || s.P50 <= 0 || s.P99 < s.P50 {
			t.Fatalf("latency summary for %s: %+v", op, s)
		}
	}
	if len(rep.Sessions) != 3 {
		t.Fatalf("outcomes: %+v", rep.Sessions)
	}
	for _, o := range rep.Sessions {
		if o.Applied == 0 {
			t.Fatalf("session %d made no progress: %+v", o.Index, o)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run("", "", true, 0, 1, 1, 50, 1, 1, 1, false, &out); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if err := run("", "", true, 1, 1, 1, 50, 3, 1, 1, false, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBackoffDelay(t *testing.T) {
	// No jitter, no hint: half the exponential span.
	if d := backoffDelay(0, 0, 0); d != retryBase/2 {
		t.Fatalf("attempt 0: %s, want %s", d, retryBase/2)
	}
	if d := backoffDelay(3, 0, 0); d != (retryBase<<3)/2 {
		t.Fatalf("attempt 3: %s, want %s", d, (retryBase<<3)/2)
	}
	// Full jitter stays inside the span.
	if d := backoffDelay(0, 0, 0.999); d <= retryBase/2 || d >= retryBase {
		t.Fatalf("jittered attempt 0: %s, want in (%s, %s)", d, retryBase/2, retryBase)
	}
	// Deep attempts cap (including the shift-overflow regime).
	for _, attempt := range []int{10, 40, 80} {
		if d := backoffDelay(attempt, 0, 0); d != retryCap/2 {
			t.Fatalf("attempt %d: %s, want capped %s", attempt, d, retryCap/2)
		}
		if d := backoffDelay(attempt, 0, 0.999); d > retryCap {
			t.Fatalf("attempt %d jittered: %s exceeds cap %s", attempt, d, retryCap)
		}
	}
	// The server's Retry-After hint is a floor.
	if d := backoffDelay(0, 2*time.Second, 0.5); d != 2*time.Second {
		t.Fatalf("Retry-After floor: %s, want 2s", d)
	}
	// ...but a longer computed backoff is kept.
	if d := backoffDelay(40, time.Second, 0); d != retryCap/2 {
		t.Fatalf("hint below curve: %s, want %s", d, retryCap/2)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"1":    time.Second,
		" 3 ":  3 * time.Second,
		"":     0,
		"soon": 0,
		"-2":   0,
		"1.5":  0,
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %s, want %s", h, got, want)
		}
	}
}

func TestParseServerTiming(t *testing.T) {
	got := parseServerTiming(`admit;dur=0.120, queue;dur=3.5;desc="actor queue", exec;dur="12.25"`)
	want := map[string]float64{"admit": 0.000120, "queue": 0.0035, "exec": 0.01225}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for stage, secs := range want {
		if d := got[stage] - secs; d > 1e-12 || d < -1e-12 {
			t.Errorf("%s = %v, want %v", stage, got[stage], secs)
		}
	}
	for name, h := range map[string]string{
		"empty":       "",
		"no dur":      `cache;desc="hit", cpu`,
		"garbage dur": "db;dur=fast",
		"only commas": ", ,",
	} {
		if got := parseServerTiming(h); got != nil {
			t.Errorf("%s: parseServerTiming(%q) = %v, want nil", name, h, got)
		}
	}
	// A malformed entry must not poison the valid ones around it.
	got = parseServerTiming("bad;dur=x, good;dur=1000")
	if len(got) != 1 || got["good"] != 1.0 {
		t.Errorf("mixed header parsed to %v", got)
	}
}

func TestRecordServerTiming(t *testing.T) {
	lc := newLoadClient(nil, "", 1)
	lc.recordServerTiming("queue;dur=2.0, exec;dur=8.0")
	lc.recordServerTiming("queue;dur=4.0")
	lc.recordServerTiming("") // no header: nothing recorded
	summ := lc.stages.summarize()
	if q, ok := summ["queue"]; !ok || q.Count != 2 {
		t.Fatalf("queue summary = %+v", summ)
	}
	if e, ok := summ["exec"]; !ok || e.Count != 1 {
		t.Fatalf("exec summary = %+v", summ)
	}
}
