package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gdr/internal/faultfs"
	"gdr/internal/server"
)

// TestChaosSoak is the overload acceptance run: a multi-tenant server with
// intermittent checkpoint fsync failures and slow actors serves two
// well-behaved tenants at full benchmark load while a third tenant hammers
// it far past its rate quota. Well-behaved tenants must finish with zero
// real 5xx responses and bounded p99 latency; the abuser must be shed with
// 429 + Retry-After; the injected disk faults must be visible in metrics;
// and after the faults heal, a drain + reboot must restore the surviving
// session to a byte-identical export.
func TestChaosSoak(t *testing.T) {
	n, rounds, users := 200, 8, 3
	if testing.Short() {
		n, rounds, users = 100, 4, 2
	}

	dir := t.TempDir()
	faults := faultfs.New(99)
	faults.Set(faultfs.Sync, faultfs.Rule{P: 0.5, Err: faultfs.ErrInjected})
	faults.Set(faultfs.Actor, faultfs.Rule{P: 0.3, Delay: 2 * time.Millisecond})
	tenants := []server.TenantConfig{
		{Name: "good1", Key: "good1key1234"},
		{Name: "good2", Key: "good2key1234"},
		{Name: "abuser", Key: "abuserkey999", RatePerSec: 2, Burst: 2},
	}
	cfg := server.Config{
		Workers: 4, MaxSessions: 16, DataDir: dir, Faults: faults,
		Tenants: tenants, CheckpointEvery: 50 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	addr := "http://" + ln.Addr().String()

	// A durable session driven through the soak — the subject of the
	// post-recovery byte-identity check.
	d, err := workload(1, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := d.Dirty.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	var rules strings.Builder
	for _, r := range d.Rules {
		rules.WriteString(r.String() + "\n")
	}
	lc := newLoadClient(&http.Client{Timeout: time.Minute}, "good1key1234", 11)
	var created server.CreateSessionResponse
	code, err := lc.doJSON("POST", addr+"/v1/sessions", server.CreateSessionRequest{
		Name: "durable", CSV: csvBuf.String(), Rules: rules.String(), Seed: 5,
	}, &created)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("creating durable session: code %d err %v", code, err)
	}
	durableID := created.Session.ID

	// The abusive tenant: a raw client (no retries, no backoff) hammering
	// the API far past its 2/s quota until the soak ends.
	stop := make(chan struct{})
	var abuserWG sync.WaitGroup
	var abuserMu sync.Mutex
	abuser429, abuserMissingRA, abuserOK := 0, 0, 0
	abuserWG.Add(1)
	go func() {
		defer abuserWG.Done()
		hc := &http.Client{Timeout: 10 * time.Second}
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, err := http.NewRequest("GET", addr+"/v1/sessions", nil)
			if err != nil {
				return
			}
			req.Header.Set("Authorization", "Bearer abuserkey999")
			resp, err := hc.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			abuserMu.Lock()
			switch {
			case resp.StatusCode == http.StatusTooManyRequests:
				abuser429++
				if resp.Header.Get("Retry-After") == "" {
					abuserMissingRA++
				}
			case resp.StatusCode == http.StatusOK:
				abuserOK++
			}
			abuserMu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// The well-behaved tenants: full gdrload benchmark runs, concurrently,
	// plus the durable session's own user. run() fails on any unexpected
	// status, so a clean return already means no unhandled 5xx.
	reports := make([]Report, 2)
	errs := make([]error, 3)
	var workWG sync.WaitGroup
	for i, key := range []string{"good1key1234", "good2key1234"} {
		workWG.Add(1)
		go func(i int, key string) {
			defer workWG.Done()
			var out bytes.Buffer
			if err := run(runConfig{
				addr: addr, key: key, sessions: 1, users: users, rounds: rounds,
				n: n, ds: 1, seed: 31 + int64(i), workers: 4,
			}, &out); err != nil {
				errs[i] = fmt.Errorf("tenant %d load run: %w", i, err)
				return
			}
			errs[i] = json.Unmarshal(out.Bytes(), &reports[i])
		}(i, key)
	}
	workWG.Add(1)
	go func() {
		defer workWG.Done()
		lats := &latRecorder{byOp: make(map[string][]float64)}
		var cnt counters
		errs[2] = drive(lc, addr, durableID, d.Truth, 0, rounds, false, false, lats, &cnt)
	}()
	workWG.Wait()
	close(stop)
	abuserWG.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The abuser was shed, every shed carried Retry-After.
	if abuser429 == 0 {
		t.Fatal("abusive tenant was never shed despite a 2/s quota")
	}
	if abuserMissingRA != 0 {
		t.Fatalf("%d of %d sheds lacked a Retry-After header", abuserMissingRA, abuser429)
	}

	// Well-behaved tenants: bounded p99, and zero real 5xx server-wide
	// (sheds carry Retry-After and are excluded from the error counter).
	for i, rep := range reports {
		fb, ok := rep.Latency["feedback"]
		if !ok || fb.Count == 0 {
			t.Fatalf("tenant %d drove no feedback", i)
		}
		if fb.P99 > 10.0 {
			t.Fatalf("tenant %d feedback p99 %.2fs exceeds the 10s soak bound", i, fb.P99)
		}
	}
	if got := srv.Registry().Counter("gdrd_http_errors_total").Value(); got != 0 {
		t.Fatalf("%d real 5xx responses during the soak, want 0", got)
	}

	// The injected disk faults actually fired and are visible in metrics.
	if faults.Hits(faultfs.Sync) == 0 {
		t.Fatal("no fsync faults fired; the soak did not exercise the disk path")
	}
	if srv.Registry().Counter("gdrd_checkpoint_failures_total").Value() == 0 {
		t.Fatal("checkpoint failures not counted despite injected fsync faults")
	}
	scrape := func() string {
		resp, err := http.Get(addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if got := scrape(); !strings.Contains(got, `gdrd_shed_total{reason="rate",tenant="abuser"}`) {
		t.Fatalf("abuser sheds not on /metrics:\n%s", got)
	}

	// Recovery: heal the disk, export, drain (flushes dirty sessions),
	// reboot over the same data directory — the restored session must serve
	// a byte-identical export under the same token and owner.
	faults.Clear()
	export := func(base string) string {
		req, err := http.NewRequest("GET", base+"/v1/sessions/"+durableID+"/export", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer good1key1234")
		resp, err := (&http.Client{Timeout: time.Minute}).Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("export: status %d: %s", resp.StatusCode, body)
		}
		return string(body)
	}
	before := export(addr)
	hs.Close()
	srv.Close()

	cfg.Faults = nil
	srv2 := server.New(cfg)
	defer srv2.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go func() { _ = hs2.Serve(ln2) }()
	defer hs2.Close()
	after := export("http://" + ln2.Addr().String())
	if before != after {
		t.Fatal("export diverges after chaos + drain + reboot")
	}
}
