// Command gdrload replays oracle-simulated users against a gdrd server and
// reports end-to-end feedback-round throughput and latency percentiles —
// the multi-session benchmark behind BENCH_3.json.
//
// It generates one synthetic workload per session (distinct seeds), uploads
// the dirty instances, then spins N concurrent users across the M sessions;
// each user runs the Procedure-1 loop — ranked groups, one group's updates,
// a batched feedback round answered from the generator's ground truth —
// until the session is clean or its round budget runs out. The report is a
// single JSON document on stdout.
//
//	gdrload -addr http://localhost:8080 -sessions 4 -users 8 -n 400
//	gdrload -selfhost -sessions 4 -users 8     # in-process server, loopback HTTP
//	gdrload -proxy 3 -kill -sessions 4 -users 8  # in-process 3-node cluster
//
// -proxy N boots an in-process cluster — N cluster-mode gdrd nodes with
// durable data dirs behind a real gdrproxy ring — and drives the load
// through the gateway; the report gains a per-node distribution (requests,
// owned sessions, migrations, replica pushes and promotions). -kill
// additionally crashes one node mid-drive: the proxy's failover must
// restore its sessions onto the survivors and every tenant must still
// finish.
//
// Every feedback POST carries a stable X-Gdr-Request-Id, so a round
// retried after a shed is applied exactly once. -dup stresses that path
// deliberately: each round is immediately re-POSTed with its same id, and
// the run fails unless the duplicate comes back as a replay
// (X-Gdr-Duplicate) with identical stats instead of mutating the session
// again. The report counts every replayed duplicate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gdr"
	"gdr/internal/cluster"
	"gdr/internal/server"
)

// runConfig carries the benchmark knobs from flags (or tests) into run.
type runConfig struct {
	addr     string // base URL of an external gdrd ("" with selfhost/proxyN)
	key      string // bearer API key ("" = no auth)
	selfhost bool   // boot one in-process server
	proxyN   int    // boot an in-process N-node cluster behind a proxy
	kill     bool   // with proxyN: crash one node mid-drive
	sessions int
	users    int
	rounds   int
	n        int
	ds       int
	seed     int64
	workers  int
	sweep    bool
	dup      bool // re-POST every feedback round with its same request id
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.addr, "addr", "", "base URL of a running gdrd (e.g. http://localhost:8080)")
	flag.BoolVar(&cfg.selfhost, "selfhost", false, "boot an in-process server on a loopback port instead of -addr")
	flag.IntVar(&cfg.proxyN, "proxy", 0, "boot an in-process N-node cluster behind a gdrproxy ring and drive through the gateway")
	flag.BoolVar(&cfg.kill, "kill", false, "with -proxy: abruptly kill one node mid-drive; failover must finish the run")
	flag.IntVar(&cfg.sessions, "sessions", 4, "concurrent repair sessions (tenants)")
	flag.IntVar(&cfg.users, "users", 8, "concurrent simulated users, round-robin across sessions")
	flag.IntVar(&cfg.rounds, "rounds", 50, "max feedback rounds per user")
	flag.IntVar(&cfg.n, "n", 400, "records per uploaded instance")
	flag.IntVar(&cfg.ds, "dataset", 1, "workload generator: 1 = hospital, 2 = census")
	flag.Int64Var(&cfg.seed, "seed", 7, "base seed; session i uploads seed+i")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "server worker budget (selfhost and proxy modes)")
	flag.BoolVar(&cfg.sweep, "sweep", false, "ask for a learner sweep with every feedback round")
	flag.BoolVar(&cfg.dup, "dup", false, "re-POST every feedback round with its same request id; the duplicate must replay, never re-apply")
	flag.StringVar(&cfg.key, "key", "", "bearer API key for an authenticated gdrd (-keyfile mode)")
	flag.Parse()
	if cfg.addr == "" && !cfg.selfhost && cfg.proxyN == 0 {
		fmt.Fprintln(os.Stderr, "gdrload: need -addr, -selfhost or -proxy")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gdrload:", err)
		os.Exit(1)
	}
}

// Report is the benchmark output document.
type Report struct {
	Config      ReportConfig `json:"config"`
	Setup       SetupStats   `json:"setup"`
	WallSeconds float64      `json:"wall_seconds"`
	Rounds      int          `json:"feedback_rounds"`
	Items       int          `json:"feedback_items"`
	Applied     int          `json:"feedback_applied"`
	Stale       int          `json:"feedback_stale"`
	Learner     int          `json:"learner_decisions"`
	Groups304   int          `json:"groups_not_modified"`
	Sheds429    int          `json:"sheds_429"`
	Sheds503    int          `json:"sheds_503"`
	Retries     int          `json:"retries"`
	// DupReplays counts feedback responses the server answered from its
	// dedup window (X-Gdr-Duplicate) — forced -dup re-POSTs plus any
	// organic retry that would otherwise have double-applied a round.
	DupReplays int                `json:"duplicate_replays"`
	Throughput ThroughputStats    `json:"throughput"`
	Latency    map[string]LatSumm `json:"latency_seconds"`
	// ServerStages is the server-side stage breakdown (admit, queue, slot,
	// exec, persist), sourced from the Server-Timing header of every
	// response — where each request actually spent its time inside gdrd, as
	// opposed to the client-observed Latency above.
	ServerStages map[string]LatSumm `json:"server_stage_seconds"`
	Sessions     []SessionOutcome   `json:"sessions"`
	// Cluster is the per-node distribution, present only in -proxy mode.
	Cluster *ClusterReport `json:"cluster,omitempty"`
}

// ClusterReport is the -proxy mode addendum: where the load actually
// landed across the ring, and what the membership machinery did.
type ClusterReport struct {
	Nodes         int        `json:"nodes"`
	KilledNode    string     `json:"killed_node,omitempty"`
	RingVersion   uint64     `json:"ring_version"`
	Migrations    int64      `json:"migrations"`
	Recovered     int64      `json:"recovered_sessions"`
	ReplicaPushes int64      `json:"replica_pushes"`
	Promotions    int64      `json:"replica_promotions"`
	PerNode       []NodeLoad `json:"per_node"`
}

// NodeLoad is one ring member's share of the drive.
type NodeLoad struct {
	URL      string `json:"url"`
	Live     bool   `json:"live"`
	Requests int64  `json:"requests"`
	Sessions int    `json:"sessions_owned"`
}

// ReportConfig echoes the knobs that shaped the run.
type ReportConfig struct {
	Target   string `json:"target"`
	Sessions int    `json:"sessions"`
	Users    int    `json:"users"`
	Rounds   int    `json:"max_rounds_per_user"`
	N        int    `json:"records_per_session"`
	Dataset  int    `json:"dataset"`
	Seed     int64  `json:"seed"`
	Workers  int    `json:"workers"`
	Sweep    bool   `json:"sweep"`
}

// SetupStats covers the upload phase (not counted in the drive wall time).
type SetupStats struct {
	Seconds        float64 `json:"seconds"`
	SessionsOpened int     `json:"sessions_opened"`
}

// ThroughputStats are the headline rates.
type ThroughputStats struct {
	ItemsPerSec  float64 `json:"feedback_items_per_sec"`
	RoundsPerSec float64 `json:"feedback_rounds_per_sec"`
}

// LatSumm summarizes one operation's latency distribution.
type LatSumm struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SessionOutcome is the per-tenant end state.
type SessionOutcome struct {
	Index        int     `json:"index"`
	InitialDirty int     `json:"initial_dirty"`
	Dirty        int     `json:"dirty"`
	Applied      int     `json:"applied"`
	Pending      int     `json:"pending"`
	CleanedPct   float64 `json:"cleaned_pct"`
}

// latRecorder collects op durations across users.
type latRecorder struct {
	mu   sync.Mutex
	byOp map[string][]float64
}

func (l *latRecorder) observe(op string, d time.Duration) {
	l.mu.Lock()
	l.byOp[op] = append(l.byOp[op], d.Seconds())
	l.mu.Unlock()
}

func (l *latRecorder) summarize() map[string]LatSumm {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]LatSumm, len(l.byOp))
	for op, xs := range l.byOp {
		sort.Float64s(xs)
		n := len(xs)
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		q := func(p float64) float64 {
			i := int(p*float64(n)+0.5) - 1
			if i < 0 {
				i = 0
			}
			if i >= n {
				i = n - 1
			}
			return xs[i]
		}
		out[op] = LatSumm{Count: n, Mean: sum / float64(n), P50: q(0.50), P90: q(0.90), P99: q(0.99), Max: xs[n-1]}
	}
	return out
}

// counters are the shared run totals.
type counters struct {
	mu        sync.Mutex
	rounds    int
	items     int
	applied   int
	stale     int
	learner   int
	groups304 int
	dups      int
}

func run(cfg runConfig, out io.Writer) error {
	addr, key := cfg.addr, cfg.key
	sessions, users, rounds := cfg.sessions, cfg.users, cfg.rounds
	n, ds, seed, workers, sweep := cfg.n, cfg.ds, cfg.seed, cfg.workers, cfg.sweep
	if sessions < 1 || users < 1 {
		return fmt.Errorf("need at least one session and one user")
	}
	if cfg.selfhost && cfg.proxyN > 0 {
		return fmt.Errorf("pick one of -selfhost and -proxy")
	}
	if cfg.kill && cfg.proxyN < 2 {
		return fmt.Errorf("-kill needs -proxy with at least 2 nodes")
	}
	var rig *clusterRig
	switch {
	case cfg.proxyN > 0:
		var err error
		if rig, err = startClusterRig(cfg.proxyN, workers, sessions); err != nil {
			return err
		}
		defer rig.close()
		addr = rig.url
	case cfg.selfhost:
		srv := server.New(server.Config{Workers: workers, MaxSessions: sessions + 1})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		addr = "http://" + ln.Addr().String()
	}
	addr = strings.TrimRight(addr, "/")
	lc := newLoadClient(&http.Client{Timeout: 2 * time.Minute}, key, seed)

	// Upload phase: one workload per session, distinct seeds. Uploads fan
	// out concurrently — the server builds sessions in parallel up to its
	// worker budget, so serial creates would leave it idle and stretch
	// setup linearly with -sessions.
	setupStart := time.Now()
	type tenant struct {
		id    string
		truth *gdr.DB
	}
	tenants := make([]tenant, sessions)
	setupErrs := make([]error, sessions)
	var setupWG sync.WaitGroup
	for i := range tenants {
		setupWG.Add(1)
		go func(i int) {
			defer setupWG.Done()
			d, err := workload(ds, n, seed+int64(i))
			if err != nil {
				setupErrs[i] = err
				return
			}
			var csvBuf bytes.Buffer
			if err := d.Dirty.WriteCSV(&csvBuf); err != nil {
				setupErrs[i] = err
				return
			}
			var rules strings.Builder
			for _, r := range d.Rules {
				rules.WriteString(r.String() + "\n")
			}
			var created server.CreateSessionResponse
			code, err := lc.doJSON("POST", addr+"/v1/sessions", server.CreateSessionRequest{
				Name:  fmt.Sprintf("load-%d", i),
				CSV:   csvBuf.String(),
				Rules: rules.String(),
				Seed:  seed + int64(i),
			}, &created)
			if err != nil {
				setupErrs[i] = fmt.Errorf("creating session %d: %w", i, err)
				return
			}
			if code != http.StatusCreated {
				setupErrs[i] = fmt.Errorf("creating session %d: status %d", i, code)
				return
			}
			tenants[i] = tenant{id: created.Session.ID, truth: d.Truth}
		}(i)
	}
	setupWG.Wait()
	for _, err := range setupErrs {
		if err != nil {
			return err
		}
	}
	setup := SetupStats{Seconds: time.Since(setupStart).Seconds(), SessionsOpened: sessions}

	// Drive phase: users fan out round-robin across sessions.
	lats := &latRecorder{byOp: make(map[string][]float64)}
	var cnt counters
	var wg sync.WaitGroup
	errc := make(chan error, users)
	driveStart := time.Now()
	driveDone := make(chan struct{})
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			tn := tenants[u%sessions]
			if err := drive(lc, addr, tn.id, tn.truth, u, rounds, sweep, cfg.dup, lats, &cnt); err != nil {
				errc <- fmt.Errorf("user %d: %w", u, err)
			}
		}(u)
	}
	if cfg.kill && rig != nil {
		// Crash the node owning the first tenant's session once the drive
		// is demonstrably under way; the failover path must finish the run.
		threshold := users / 2
		if threshold < 2 {
			threshold = 2
		}
		go rig.killWhenBusy(&cnt, threshold, tenants[0].id, driveDone)
	}
	wg.Wait()
	close(driveDone)
	wall := time.Since(driveStart).Seconds()
	close(errc)
	for err := range errc {
		return err
	}

	// The cluster distribution is read before teardown deletes the
	// sessions, while ownership is still observable.
	var clusterRep *ClusterReport
	if rig != nil {
		ids := make([]string, len(tenants))
		for i, tn := range tenants {
			ids[i] = tn.id
		}
		clusterRep = rig.report(ids)
	}

	// Final per-session state, then teardown.
	outcomes := make([]SessionOutcome, sessions)
	for i, tn := range tenants {
		var st server.StatusResponse
		code, err := lc.doJSON("GET", addr+"/v1/sessions/"+tn.id+"/status", nil, &st)
		if err != nil || code != 200 {
			return fmt.Errorf("status of session %d: code %d err %v", i, code, err)
		}
		outcomes[i] = SessionOutcome{
			Index:        i,
			InitialDirty: st.Stats.InitialDirty,
			Dirty:        st.Stats.Dirty,
			Applied:      st.Stats.Applied,
			Pending:      st.Stats.Pending,
			CleanedPct:   st.Stats.CleanedPct,
		}
		if code, err := lc.doJSON("DELETE", addr+"/v1/sessions/"+tn.id, nil, nil); err != nil || code != 200 {
			return fmt.Errorf("deleting session %d: code %d err %v", i, code, err)
		}
	}

	sheds429, sheds503, retries := lc.counts()
	rep := Report{
		Config: ReportConfig{
			Target: addr, Sessions: sessions, Users: users, Rounds: rounds,
			N: n, Dataset: ds, Seed: seed, Workers: workers, Sweep: sweep,
		},
		Setup:       setup,
		WallSeconds: wall,
		Rounds:      cnt.rounds,
		Items:       cnt.items,
		Applied:     cnt.applied,
		Stale:       cnt.stale,
		Learner:     cnt.learner,
		Groups304:   cnt.groups304,
		Sheds429:    sheds429,
		Sheds503:    sheds503,
		Retries:     retries,
		DupReplays:  cnt.dups,
		Throughput: ThroughputStats{
			ItemsPerSec:  float64(cnt.items) / wall,
			RoundsPerSec: float64(cnt.rounds) / wall,
		},
		Latency:      lats.summarize(),
		ServerStages: lc.stages.summarize(),
		Sessions:     outcomes,
		Cluster:      clusterRep,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// drive is one simulated user: the interactive loop of Procedure 1 against
// one served session, answers from the ground truth.
func drive(lc *loadClient, addr, id string, truth *gdr.DB, u, rounds int, sweep, dup bool, lats *latRecorder, cnt *counters) error {
	base := addr + "/v1/sessions/" + id
	// Conditional polling state: the last groups listing and its validator.
	// The server answers an unchanged ranking with a bodyless 304, so a user
	// whose session was not perturbed since its previous poll (common when
	// users outnumber active work, or between retries) pays no body at all.
	var groups server.GroupsResponse
	var groupsTag string
	for r := 0; r < rounds; r++ {
		start := time.Now()
		code, tag, err := lc.getJSONCond(base+"/groups?order=voi&limit=4", groupsTag, &groups)
		switch {
		case err != nil:
			return fmt.Errorf("groups: %v", err)
		case code == http.StatusNotModified:
			cnt.mu.Lock()
			cnt.groups304++
			cnt.mu.Unlock()
		case code == 200:
			groupsTag = tag
		default:
			return fmt.Errorf("groups: code %d", code)
		}
		lats.observe("groups", time.Since(start))
		if len(groups.Groups) == 0 {
			return nil // session fully repaired
		}
		g := groups.Groups[u%len(groups.Groups)]

		start = time.Now()
		var ups server.UpdatesResponse
		code, err = lc.doJSON("GET", base+"/groups/"+g.Key+"/updates", nil, &ups)
		if err != nil {
			return fmt.Errorf("updates: %v", err)
		}
		lats.observe("updates", time.Since(start))
		if code == http.StatusNotFound {
			continue // another user drained the group between the two calls
		}
		if code != 200 {
			return fmt.Errorf("updates: code %d", code)
		}

		items := make([]server.FeedbackItem, 0, len(ups.Updates))
		for _, up := range ups.Updates {
			want := truth.Get(up.Tid, up.Attr)
			verb := "reject"
			switch {
			case up.Value == want:
				verb = "confirm"
			case up.Current == want:
				verb = "retain"
			}
			items = append(items, server.FeedbackItem{Tid: up.Tid, Attr: up.Attr, Value: up.Value, Feedback: verb})
		}
		// The request id is stable across the retry loop's attempts (and the
		// forced -dup replay): a round shed mid-flight and retried must be
		// applied exactly once, whichever attempt actually landed.
		reqID := fmt.Sprintf("gdrload-%s-%d-%d", id, u, r)
		body := server.FeedbackRequest{Items: items, Sweep: sweep}
		start = time.Now()
		var fb server.FeedbackResponse
		code, wasDup, err := lc.doJSONID("POST", base+"/feedback", body, &fb, reqID)
		if err != nil || code != 200 {
			return fmt.Errorf("feedback: code %d err %v", code, err)
		}
		lats.observe("feedback", time.Since(start))
		replays := 0
		if wasDup {
			replays++ // an organic retry already landed this round
		}
		if dup {
			var fb2 server.FeedbackResponse
			code, wasDup, err := lc.doJSONID("POST", base+"/feedback", body, &fb2, reqID)
			if err != nil || code != 200 {
				return fmt.Errorf("duplicate feedback: code %d err %v", code, err)
			}
			if !wasDup {
				return fmt.Errorf("round %d: forced duplicate was applied again, not replayed", r)
			}
			if fb2.Stats != fb.Stats {
				return fmt.Errorf("round %d: duplicate replay diverges: %+v vs %+v", r, fb2.Stats, fb.Stats)
			}
			replays++
		}

		applied, stale := 0, 0
		for _, res := range fb.Results {
			switch res.Status {
			case server.FeedbackApplied:
				applied++
			case server.FeedbackStale:
				stale++
			}
		}
		cnt.mu.Lock()
		cnt.rounds++
		cnt.items += len(items)
		cnt.applied += applied
		cnt.stale += stale
		cnt.learner += len(fb.LearnerDecisions)
		cnt.dups += replays
		cnt.mu.Unlock()
	}
	return nil
}

func workload(ds, n int, seed int64) (*gdr.Data, error) {
	cfg := gdr.DataConfig{N: n, Seed: seed}
	switch ds {
	case 1:
		return gdr.HospitalData(cfg), nil
	case 2:
		return gdr.CensusData(cfg), nil
	default:
		return nil, fmt.Errorf("unknown dataset %d (want 1 or 2)", ds)
	}
}

// clusterRig is the -proxy in-process cluster: N cluster-mode gdrd
// servers, each with its own durable data dir, behind a real gdrproxy
// ring listening on a loopback gateway.
type clusterRig struct {
	proxy *cluster.Proxy
	gwLn  net.Listener
	gwHS  *http.Server
	url   string
	urls  []string // boot order, stable for reporting

	mu     sync.Mutex
	nodes  map[string]*rigNode // gdr:guarded-by mu
	killed string              // gdr:guarded-by mu — URL of the crashed node ("" if none)
}

// rigNode is one in-process cluster member.
type rigNode struct {
	url     string
	dataDir string
	srv     *server.Server
	hs      *http.Server
}

// startClusterRig boots n nodes and the proxy. The nodes share the load
// generator's worker budget evenly-ish (at least 1 each).
func startClusterRig(n, workers, sessions int) (*clusterRig, error) {
	rig := &clusterRig{nodes: make(map[string]*rigNode, n)}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	perNode := workers / n
	if perNode < 1 {
		perNode = 1
	}
	dataDirs := make(map[string]string, n)
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "gdrload-node-*")
		if err != nil {
			rig.close()
			return nil, err
		}
		srv := server.New(server.Config{
			ClusterMode: true,
			DataDir:     dir,
			Workers:     perNode,
			MaxSessions: sessions + 1,
			Logger:      quiet,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			os.RemoveAll(dir)
			rig.close()
			return nil, err
		}
		node := &rigNode{
			url:     "http://" + ln.Addr().String(),
			dataDir: dir,
			srv:     srv,
			hs:      &http.Server{Handler: srv.Handler()},
		}
		go func() { _ = node.hs.Serve(ln) }()
		rig.mu.Lock()
		rig.nodes[node.url] = node
		rig.mu.Unlock()
		rig.urls = append(rig.urls, node.url)
		dataDirs[node.url] = dir
	}
	p, err := cluster.New(cluster.Config{
		Nodes:       rig.urls,
		DataDirs:    dataDirs,
		HealthEvery: 100 * time.Millisecond,
		FailAfter:   2,
		Logger:      quiet,
	})
	if err != nil {
		rig.close()
		return nil, err
	}
	rig.proxy = p
	p.Start()
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rig.close()
		return nil, err
	}
	rig.gwLn = gwLn
	rig.gwHS = &http.Server{Handler: p.Handler()}
	go func() { _ = rig.gwHS.Serve(gwLn) }()
	rig.url = "http://" + gwLn.Addr().String()
	return rig, nil
}

// killWhenBusy crashes the node owning the probe session once the drive
// has completed at least minRounds feedback rounds (or gives up when the
// drive finishes first).
func (r *clusterRig) killWhenBusy(cnt *counters, minRounds int, probeToken string, done <-chan struct{}) {
	for {
		cnt.mu.Lock()
		busy := cnt.rounds >= minRounds
		cnt.mu.Unlock()
		if busy {
			break
		}
		select {
		case <-done:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	victim := r.proxy.Ring().Lookup(probeToken)
	r.mu.Lock()
	node := r.nodes[victim]
	if node == nil || r.killed != "" {
		r.mu.Unlock()
		return
	}
	r.killed = victim
	r.mu.Unlock()
	// Abrupt: close the listener mid-flight, nothing drains — the health
	// loop must notice and restore the node's sessions from its data dir.
	_ = node.hs.Close()
	node.srv.Close()
}

// report reads the post-drive distribution off the ring and the proxy's
// own metrics.
func (r *clusterRig) report(sessionIDs []string) *ClusterReport {
	ring := r.proxy.Ring()
	reg := r.proxy.Registry()
	r.mu.Lock()
	killed := r.killed
	r.mu.Unlock()
	rep := &ClusterReport{
		Nodes:         len(r.urls),
		KilledNode:    killed,
		RingVersion:   ring.Version(),
		Migrations:    reg.Counter("gdrproxy_migrations_total").Value(),
		Recovered:     reg.Counter("gdrproxy_recovered_sessions_total").Value(),
		ReplicaPushes: reg.Counter("gdrproxy_replica_pushes_total").Value(),
		Promotions:    reg.Counter("gdrproxy_replica_promotions_total").Value(),
	}
	for _, url := range r.urls {
		owned := 0
		for _, id := range sessionIDs {
			if ring.Lookup(id) == url {
				owned++
			}
		}
		rep.PerNode = append(rep.PerNode, NodeLoad{
			URL:      url,
			Live:     ring.Has(url),
			Requests: reg.LabeledCounter("gdrproxy_requests_total", "node", url).Value(),
			Sessions: owned,
		})
	}
	return rep
}

// close tears the rig down and removes the node data dirs.
func (r *clusterRig) close() {
	if r.gwHS != nil {
		_ = r.gwHS.Close()
	}
	if r.proxy != nil {
		r.proxy.Close()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, url := range r.urls {
		node := r.nodes[url]
		if url != r.killed {
			_ = node.hs.Close()
			node.srv.Close()
		}
		os.RemoveAll(node.dataDir)
	}
}

// Retry policy for shed (429/503) responses.
const (
	retryBase     = 50 * time.Millisecond
	retryCap      = 5 * time.Second
	retryAttempts = 8 // retries after the first try
)

// loadClient wraps the HTTP client with bearer auth and overload-aware
// retries: a 429 or 503 is counted as a shed and retried with jittered
// exponential backoff, never sooner than the server's Retry-After hint.
// Other statuses pass straight through to the caller.
type loadClient struct {
	hc  *http.Client
	key string // bearer API key ("" = no auth header)

	// stages accumulates the per-stage server-side durations parsed from
	// every response's Server-Timing header.
	stages *latRecorder

	mu       sync.Mutex
	rng      *rand.Rand
	sheds429 int
	sheds503 int
	retries  int
}

func newLoadClient(hc *http.Client, key string, seed int64) *loadClient {
	return &loadClient{
		hc:     hc,
		key:    key,
		stages: &latRecorder{byOp: make(map[string][]float64)},
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// parseServerTiming extracts the stage durations from a Server-Timing
// header value ("queue;dur=0.312, exec;dur=4.821" — durations in
// milliseconds per the spec) as stage → seconds. Entries without a dur
// parameter, and anything malformed, are skipped.
func parseServerTiming(h string) map[string]float64 {
	if h == "" {
		return nil
	}
	out := make(map[string]float64)
	for _, entry := range strings.Split(h, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if parts[0] == "" {
			continue
		}
		for _, p := range parts[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || k != "dur" {
				continue
			}
			ms, err := strconv.ParseFloat(strings.Trim(v, `"`), 64)
			if err != nil {
				continue
			}
			out[parts[0]] = ms / 1e3
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// recordServerTiming files one response's stage breakdown.
func (c *loadClient) recordServerTiming(h string) {
	for stage, secs := range parseServerTiming(h) {
		c.stages.observe(stage, time.Duration(secs*float64(time.Second)))
	}
}

// backoffDelay computes the wait before retry number attempt (0-based):
// exponential in attempt with half the span jittered (jitter ∈ [0,1)), and
// never below the server's Retry-After hint — the server knows its own
// pressure better than our curve does.
func backoffDelay(attempt int, retryAfter time.Duration, jitter float64) time.Duration {
	d := retryBase << uint(attempt)
	if d > retryCap || d <= 0 {
		d = retryCap
	}
	d = d/2 + time.Duration(jitter*float64(d/2))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads the integer-seconds form of a Retry-After header
// (the only form gdrd emits); anything else means no hint.
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// shed records one shed response and reports whether the caller should
// retry (budget permitting).
func (c *loadClient) shed(status, attempt int) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if status == http.StatusTooManyRequests {
		c.sheds429++
	} else {
		c.sheds503++
	}
	if attempt >= retryAttempts {
		return 0, false
	}
	c.retries++
	return time.Duration(c.rng.Int63()), true // raw entropy; shaped by caller
}

// do issues one request, replaying through the retry policy. newReq must
// build a fresh request per attempt (bodies are consumed by a send).
func (c *loadClient) do(newReq func() (*http.Request, error)) (*http.Response, []byte, error) {
	for attempt := 0; ; attempt++ {
		req, err := newReq()
		if err != nil {
			return nil, nil, err
		}
		if c.key != "" {
			req.Header.Set("Authorization", "Bearer "+c.key)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return resp, nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			entropy, again := c.shed(resp.StatusCode, attempt)
			if again {
				jitter := float64(entropy%1000) / 1000
				time.Sleep(backoffDelay(attempt, parseRetryAfter(resp.Header.Get("Retry-After")), jitter))
				continue
			}
		}
		c.recordServerTiming(resp.Header.Get("Server-Timing"))
		return resp, data, nil
	}
}

// counts snapshots the shed/retry totals for the report.
func (c *loadClient) counts() (sheds429, sheds503, retries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sheds429, c.sheds503, c.retries
}

// getJSONCond issues a conditional GET: etag (if any) travels as
// If-None-Match. On 200 the body is decoded into out and the fresh ETag
// returned; on 304 out is left holding the caller's cached value.
func (c *loadClient) getJSONCond(url, etag string, out any) (int, string, error) {
	resp, data, err := c.do(func() (*http.Request, error) {
		req, err := http.NewRequest("GET", url, nil)
		if err == nil && etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		return req, err
	})
	if err != nil {
		return 0, "", err
	}
	if resp.StatusCode == http.StatusOK && out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, "", fmt.Errorf("decoding GET %s response: %w", url, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("ETag"), nil
}

// doJSON issues one JSON request; out may be nil.
func (c *loadClient) doJSON(method, url string, body any, out any) (int, error) {
	code, _, err := c.doJSONID(method, url, body, out, "")
	return code, err
}

// doJSONID issues one JSON request carrying an idempotency key (reqID ""
// sends none). The key is set inside the per-attempt request builder, so
// every retry of a shed response replays the same id — that is what turns
// retried mutations into exactly-once ones. dup reports whether the server
// answered from its dedup window instead of applying the request.
func (c *loadClient) doJSONID(method, url string, body, out any, reqID string) (int, bool, error) {
	var buf []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, false, err
		}
		buf = b
	}
	resp, data, err := c.do(func() (*http.Request, error) {
		var rd io.Reader
		if buf != nil {
			rd = bytes.NewReader(buf)
		}
		req, err := http.NewRequest(method, url, rd)
		if err == nil && buf != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if err == nil && reqID != "" {
			req.Header.Set(server.RequestIDHeader, reqID)
		}
		return req, err
	})
	if err != nil {
		return 0, false, err
	}
	if out != nil && len(data) > 0 && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, false, fmt.Errorf("decoding %s %s response: %w", method, url, err)
		}
	}
	return resp.StatusCode, resp.Header.Get(server.DuplicateHeader) != "", nil
}
