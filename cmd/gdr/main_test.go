package main

import (
	"os"
	"path/filepath"
	"testing"

	"gdr"
)

// writeWorkload materializes a small workload for CLI tests.
func writeWorkload(t *testing.T) (dir string) {
	t.Helper()
	dir = t.TempDir()
	d := gdr.HospitalData(gdr.DataConfig{N: 300, Seed: 3})
	if err := d.Dirty.WriteCSVFile(filepath.Join(dir, "dirty.csv")); err != nil {
		t.Fatal(err)
	}
	if err := d.Truth.WriteCSVFile(filepath.Join(dir, "truth.csv")); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "rules.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Rules {
		if _, err := f.WriteString(r.String() + "\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSimulatedRunFromFiles(t *testing.T) {
	dir := writeWorkload(t)
	err := run(
		filepath.Join(dir, "dirty.csv"),
		filepath.Join(dir, "rules.txt"),
		filepath.Join(dir, "truth.csv"),
		"GDR", 40, 1, 2, "")
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := writeWorkload(t)
	if err := run("nope.csv", filepath.Join(dir, "rules.txt"), "", "GDR", 0, 1, 1, ""); err == nil {
		t.Fatal("want error for missing data file")
	}
	if err := run(filepath.Join(dir, "dirty.csv"), "nope.txt", "", "GDR", 0, 1, 1, ""); err == nil {
		t.Fatal("want error for missing rules file")
	}
	if err := run(
		filepath.Join(dir, "dirty.csv"),
		filepath.Join(dir, "rules.txt"),
		filepath.Join(dir, "truth.csv"),
		"NoSuchStrategy", 10, 1, 1, ""); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}
