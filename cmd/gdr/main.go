// Command gdr runs guided data repair over CSV data.
//
// With a ground-truth file it simulates the expert user (the paper's
// evaluation protocol) and reports the quality trajectory:
//
//	gdr -data dirty.csv -rules rules.txt -truth truth.csv -strategy GDR -budget 500
//
// Without one it runs interactively: suggested updates are shown group by
// group and answered on stdin with c(onfirm) / r(eject) / k(eep, i.e.
// retain) / q(uit).
//
//	gdr -data dirty.csv -rules rules.txt -o repaired.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"gdr"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV file with the dirty instance (required)")
		rulesPath = flag.String("rules", "", "rules file, one CFD per line (required)")
		truthPath = flag.String("truth", "", "CSV ground truth; enables simulated evaluation")
		strategy  = flag.String("strategy", "GDR", "strategy: GDR | GDR-NoLearning | GDR-S-Learning | Active-Learning | Greedy | Random | Heuristic")
		budget    = flag.Int("budget", 0, "max user feedbacks (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for VOI scoring and candidate generation (1 = serial; results are identical either way)")
		outPath   = flag.String("o", "", "write the repaired instance to this CSV file")
	)
	flag.Parse()
	if *dataPath == "" || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dataPath, *rulesPath, *truthPath, *strategy, *budget, *seed, *workers, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "gdr:", err)
		os.Exit(1)
	}
}

func run(dataPath, rulesPath, truthPath, strategy string, budget int, seed int64, workers int, outPath string) error {
	db, err := gdr.ReadCSVFile(dataPath)
	if err != nil {
		return err
	}
	rf, err := os.Open(rulesPath)
	if err != nil {
		return err
	}
	rules, err := gdr.ParseRules(rf)
	rf.Close()
	if err != nil {
		return err
	}

	if truthPath != "" {
		truth, err := gdr.ReadCSVFile(truthPath)
		if err != nil {
			return err
		}
		rc := gdr.RunConfig{Budget: budget, Seed: seed, RecordEvery: 25}
		rc.Session.Workers = workers
		res, err := gdr.Run(gdr.Strategy(strategy), db, truth, rules, rc)
		if err != nil {
			return err
		}
		fmt.Printf("strategy            %s\n", res.Strategy)
		fmt.Printf("initial dirty       %d\n", res.InitialDirty)
		fmt.Printf("user feedbacks      %d\n", res.Verified)
		fmt.Printf("learner decisions   %d\n", res.LearnerDecisions)
		fmt.Printf("applied changes     %d (forced fixes: %d)\n", res.Applied, res.ForcedFixes)
		fmt.Printf("quality improvement %.2f%%\n", res.FinalImprovement)
		fmt.Printf("precision / recall  %.3f / %.3f\n", res.Precision, res.Recall)
		fmt.Println("\ntrajectory (feedbacks -> improvement%):")
		for _, p := range res.Points {
			fmt.Printf("  %6d  %6.2f\n", p.Verified, p.Improvement)
		}
		return nil
	}

	return interactive(db, rules, budget, seed, workers, outPath)
}

// interactive drives a live session against a human on stdin.
func interactive(db *gdr.DB, rules []*gdr.CFD, budget int, seed int64, workers int, outPath string) error {
	sess, err := gdr.NewSession(db, rules, gdr.SessionConfig{Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("%d dirty tuples, %d suggested updates\n", sess.InitialDirtyCount(), sess.PendingCount())
	in := bufio.NewScanner(os.Stdin)
	asked := 0
loop:
	for sess.PendingCount() > 0 && (budget <= 0 || asked < budget) {
		gs := sess.Groups(gdr.OrderVOI, nil)
		if len(gs) == 0 {
			break
		}
		g := gs[0]
		fmt.Printf("\ngroup %s — %d updates (estimated benefit %.3f)\n", g.Key, g.Size(), g.Benefit)
		for _, u := range g.Updates {
			if cur, ok := sess.Pending(u.Cell()); !ok || cur != u {
				continue
			}
			fmt.Printf("  t%d.%s: %q -> %q (score %.2f)? [c/r/k/q] ",
				u.Tid, u.Attr, db.Get(u.Tid, u.Attr), u.Value, u.Score)
			if !in.Scan() {
				break loop
			}
			asked++
			switch strings.TrimSpace(strings.ToLower(in.Text())) {
			case "c", "y", "confirm":
				sess.UserFeedback(u, gdr.Confirm)
			case "r", "n", "reject":
				sess.UserFeedback(u, gdr.Reject)
			case "k", "keep", "retain":
				sess.UserFeedback(u, gdr.Retain)
			case "q", "quit":
				break loop
			default:
				fmt.Println("  (skipped)")
			}
		}
	}
	fmt.Printf("\nremaining dirty tuples: %d\n", sess.Engine().DirtyCount())
	if outPath != "" {
		if err := db.WriteCSVFile(outPath); err != nil {
			return err
		}
		fmt.Println("repaired instance written to", outPath)
	}
	return nil
}
