package main

import (
	"bytes"
	"io"
	"testing"

	"gdr"
)

func TestDatasetByID(t *testing.T) {
	cfg := gdr.FigureConfig{N: 200, Seed: 1}
	d1, err := datasetByID(1, cfg)
	if err != nil || d1.Name != "hospital" {
		t.Fatalf("dataset 1: %v %v", d1, err)
	}
	d2, err := datasetByID(2, cfg)
	if err != nil || d2.Name != "census" {
		t.Fatalf("dataset 2: %v %v", d2, err)
	}
	if _, err := datasetByID(3, cfg); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run("9", "1", 100, 1, 0.3, 1, false, io.Discard); err == nil {
		t.Fatal("want error for unknown figure")
	}
	if err := run("3", "zzz", 100, 1, 0.3, 1, false, io.Discard); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestRunTinyFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small) figure")
	}
	if err := run("5", "2", 600, 1, 0.3, 2, false, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestRunJobFanoutDeterministic pins the dataset×figure fan-out: the full
// request, rendered from jobs completing in any order, must be
// byte-identical at any worker count.
func TestRunJobFanoutDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two small figures on both datasets twice")
	}
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := run("3", "all", 300, 1, 0.3, workers, false, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial == "" || serial != parallel {
		t.Fatalf("output diverges between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s", serial, parallel)
	}
}
