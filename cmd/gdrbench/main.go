// Command gdrbench regenerates the paper's evaluation figures.
//
//	gdrbench -figure 3 -dataset 1            # Figure 3(a)
//	gdrbench -figure 4 -dataset 2 -n 20000   # Figure 4(b) at paper scale
//	gdrbench -figure all -dataset all -n 5000
//
// Each figure prints as an aligned text table: one row per x value, one
// column per strategy/series — the same curves the paper plots. Absolute
// numbers differ from the paper (synthetic substitute datasets, simulated
// user); the shapes are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"gdr"
	"gdr/internal/par"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "3 | 4 | 5 | all")
		ds      = flag.String("dataset", "all", "1 | 2 | all")
		n       = flag.Int("n", 20000, "records per dataset")
		seed    = flag.Int64("seed", 7, "random seed")
		rate    = flag.Float64("dirty", 0.3, "fraction of perturbed tuples")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines, split across (dataset, figure) jobs, figure cells and session internals (1 = serial; output is identical either way)")
		verbose = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()
	if err := run(*figure, *ds, *n, *seed, *rate, *workers, *verbose, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gdrbench:", err)
		os.Exit(1)
	}
}

// run fans the whole request out three levels deep on one worker budget:
// every (dataset, figure) pair is an independent job on the pool; inside a
// job, the figure's cells divide the job's share; inside a cell, the
// session takes what is left. Results are rendered in request order —
// dataset-major, figure-minor — whatever order jobs finish in, so the
// output is byte-identical at any worker count.
func run(figure, ds string, n int, seed int64, rate float64, workers int, verbose bool, w io.Writer) error {
	workers = par.Workers(workers)
	var datasets []int
	switch ds {
	case "1":
		datasets = []int{1}
	case "2":
		datasets = []int{2}
	case "all":
		datasets = []int{1, 2}
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}
	var figures []string
	switch figure {
	case "3", "4", "5":
		figures = []string{figure}
	case "all":
		figures = []string{"3", "4", "5"}
	default:
		return fmt.Errorf("unknown figure %q", figure)
	}

	// Materialize each dataset once, shared by its figures (runs only read
	// it: every cell repairs a clone). Generation itself is serial per
	// dataset, so the two datasets are simply generated concurrently.
	baseCfg := gdr.FigureConfig{N: n, Seed: seed, DirtyRate: rate}
	data := make([]*gdr.Data, len(datasets))
	if err := par.ForEach(workers, len(datasets), func(i int) error {
		if verbose {
			fmt.Fprintf(os.Stderr, "generating dataset %d (n=%d)...\n", datasets[i], n)
		}
		d, err := datasetByID(datasets[i], baseCfg)
		if err != nil {
			return err
		}
		data[i] = d
		return nil
	}); err != nil {
		return err
	}

	// One job per (dataset, figure) pair; each job gets an equal slice of
	// the budget for its cells and sessions. The split rounds up: with 6
	// jobs on 8 workers, flooring to 1 inner worker would strand 2 cores
	// for the whole run, while the mild oversubscription from rounding up
	// just time-shares.
	type job struct{ di, fi int }
	var jobs []job
	for di := range datasets {
		for fi := range figures {
			jobs = append(jobs, job{di, fi})
		}
	}
	concurrent := min(len(jobs), workers)
	jobCfg := baseCfg
	jobCfg.Workers = par.Workers((workers + concurrent - 1) / concurrent)
	figs := make([]gdr.Figure, len(jobs))
	if err := par.ForEach(workers, len(jobs), func(i int) error {
		j := jobs[i]
		if verbose {
			fmt.Fprintf(os.Stderr, "running figure %s on dataset %d...\n", figures[j.fi], datasets[j.di])
		}
		var fig gdr.Figure
		var err error
		switch figures[j.fi] {
		case "3":
			fig, err = gdr.Figure3(data[j.di], jobCfg)
		case "4":
			fig, err = gdr.Figure4(data[j.di], jobCfg)
		case "5":
			fig, err = gdr.Figure5(data[j.di], jobCfg)
		}
		if err != nil {
			return err
		}
		figs[i] = fig
		return nil
	}); err != nil {
		return err
	}

	for _, fig := range figs {
		if err := fig.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func datasetByID(id int, cfg gdr.FigureConfig) (*gdr.Data, error) {
	dc := gdr.DataConfig{N: cfg.N, Seed: cfg.Seed, DirtyRate: cfg.DirtyRate}
	switch id {
	case 1:
		return gdr.HospitalData(dc), nil
	case 2:
		return gdr.CensusData(dc), nil
	}
	return nil, fmt.Errorf("unknown dataset %d", id)
}
