// Command gdrbench regenerates the paper's evaluation figures.
//
//	gdrbench -figure 3 -dataset 1            # Figure 3(a)
//	gdrbench -figure 4 -dataset 2 -n 20000   # Figure 4(b) at paper scale
//	gdrbench -figure all -dataset all -n 5000
//
// Each figure prints as an aligned text table: one row per x value, one
// column per strategy/series — the same curves the paper plots. Absolute
// numbers differ from the paper (synthetic substitute datasets, simulated
// user); the shapes are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gdr"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "3 | 4 | 5 | all")
		ds      = flag.String("dataset", "all", "1 | 2 | all")
		n       = flag.Int("n", 20000, "records per dataset")
		seed    = flag.Int64("seed", 7, "random seed")
		rate    = flag.Float64("dirty", 0.3, "fraction of perturbed tuples")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for figure cells and session internals (1 = serial; output is identical either way)")
		verbose = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()
	if err := run(*figure, *ds, *n, *seed, *rate, *workers, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "gdrbench:", err)
		os.Exit(1)
	}
}

func run(figure, ds string, n int, seed int64, rate float64, workers int, verbose bool) error {
	cfg := gdr.FigureConfig{N: n, Seed: seed, DirtyRate: rate, Workers: workers}
	var datasets []int
	switch ds {
	case "1":
		datasets = []int{1}
	case "2":
		datasets = []int{2}
	case "all":
		datasets = []int{1, 2}
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}
	var figures []string
	switch figure {
	case "3", "4", "5":
		figures = []string{figure}
	case "all":
		figures = []string{"3", "4", "5"}
	default:
		return fmt.Errorf("unknown figure %q", figure)
	}

	for _, id := range datasets {
		if verbose {
			fmt.Fprintf(os.Stderr, "generating dataset %d (n=%d)...\n", id, n)
		}
		data, err := datasetByID(id, cfg)
		if err != nil {
			return err
		}
		for _, f := range figures {
			if verbose {
				fmt.Fprintf(os.Stderr, "running figure %s on dataset %d...\n", f, id)
			}
			var fig gdr.Figure
			switch f {
			case "3":
				fig, err = gdr.Figure3(data, cfg)
			case "4":
				fig, err = gdr.Figure4(data, cfg)
			case "5":
				fig, err = gdr.Figure5(data, cfg)
			}
			if err != nil {
				return err
			}
			if err := fig.Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

func datasetByID(id int, cfg gdr.FigureConfig) (*gdr.Data, error) {
	dc := gdr.DataConfig{N: cfg.N, Seed: cfg.Seed, DirtyRate: cfg.DirtyRate}
	switch id {
	case 1:
		return gdr.HospitalData(dc), nil
	case 2:
		return gdr.CensusData(dc), nil
	}
	return nil, fmt.Errorf("unknown dataset %d", id)
}
