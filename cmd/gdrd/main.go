// Command gdrd serves guided-repair sessions over HTTP — the multi-tenant
// daemon around the paper's interactive Figure 2 loop. Tenants upload a
// dirty CSV instance plus CFD rules, then drive the repair loop remotely:
// ranked groups, per-group updates, batched confirm/reject/retain feedback,
// status and CSV export. See the README's "Serving repairs" section.
//
//	gdrd -addr :8080 -max-sessions 64 -ttl 30m -data-dir /var/lib/gdrd
//
// With -data-dir set, sessions are durable: every feedback round is
// checkpointed to disk, the SIGTERM drain flushes a final checkpoint of
// every live session, and a restarted daemon restores all sessions under
// their original tokens — tenants resume exactly where they left off.
//
// Feedback is exactly-once: a POST …/feedback carrying an
// X-Gdr-Request-Id is applied once, and a retry with the same id replays
// the original response bytes (marked X-Gdr-Duplicate: true) instead of
// mutating the session again. The dedup window rides the snapshot, so
// the guarantee holds across restarts and migrations.
//
// In -cluster mode each node also exposes a replica spill store under
// /v1/replicas: the cluster proxy pushes other nodes' session snapshots
// there, watermarked by mutation sequence (stale writes are refused), so
// a session survives the loss of its owner's process and disk.
//
// With -keyfile set, the daemon is authenticated multi-tenant serving:
// every /v1 request must present one of the file's bearer keys, sessions
// belong to the tenant that created them, and each tenant's rate/in-flight
// quotas (from the keyfile) shed the excess with 429 + Retry-After. CPU is
// scheduled fairly across tenants either way, -deadline bounds each request
// end to end, and -queue-depth bounds each session's command backlog.
//
// Observability: every request is traced end to end (W3C traceparent
// accepted and echoed; the response carries a Server-Timing stage
// breakdown), logs are structured (-log-format text|json, -log-level,
// every request line tagged with its trace_id), and completed traces are
// browsable at GET /debug/traces — served loopback-only on the main
// listener, and also mounted on the -pprof debug port. -trace sizes the
// retained ring (-1 disables tracing), -slow-request escalates slow
// requests to warn-level log lines.
//
// With -pprof PORT, net/http/pprof (plus /debug/traces) is served on
// 127.0.0.1:PORT — loopback only, segregated from the service listener — so
// a live daemon can be profiled (CPU, heap, goroutines) without exposing
// the endpoints to tenants.
//
// -chaos injects faults for development and soak testing (checkpoint
// write/fsync/rename failures, slow actors); it is loud on startup and must
// never be set in production.
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight requests and
// session commands finish, checkpoints flush, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gdr/internal/faultfs"
	"gdr/internal/obs"
	"gdr/internal/server"
)

// options carries the daemon's flag values.
type options struct {
	addr        string
	maxSessions int
	ttl         time.Duration
	workers     int
	drain       time.Duration
	quiet       bool
	dataDir     string
	checkpoint  time.Duration
	pprofPort   int
	keyfile     string
	deadline    time.Duration
	queueDepth  int
	chaos       string
	chaosSeed   int64
	logFormat   string
	logLevel    string
	traceCap    int
	slowReq     time.Duration
	cluster     bool
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.IntVar(&opts.maxSessions, "max-sessions", 64, "cap on live sessions (-1 = uncapped)")
	flag.DurationVar(&opts.ttl, "ttl", 30*time.Minute, "idle session time-to-live")
	flag.IntVar(&opts.workers, "workers", runtime.GOMAXPROCS(0), "CPU slots shared by all session actors")
	flag.DurationVar(&opts.drain, "drain", 30*time.Second, "graceful shutdown timeout")
	flag.BoolVar(&opts.quiet, "quiet", false, "suppress per-request log lines (warnings still log)")
	flag.StringVar(&opts.dataDir, "data-dir", "", "directory for durable session snapshots (empty = sessions die with the process)")
	flag.DurationVar(&opts.checkpoint, "checkpoint", 30*time.Second, "periodic checkpoint-retry cadence (with -data-dir)")
	flag.IntVar(&opts.pprofPort, "pprof", 0, "serve net/http/pprof and /debug/traces on 127.0.0.1:PORT (0 = disabled)")
	flag.StringVar(&opts.keyfile, "keyfile", "", "tenant keyfile enabling auth + per-tenant quotas (empty = open mode)")
	flag.DurationVar(&opts.deadline, "deadline", time.Minute, "per-request deadline, propagated through the actor queue (0 = none)")
	flag.IntVar(&opts.queueDepth, "queue-depth", 64, "per-session command queue bound; the excess is shed with 503")
	flag.StringVar(&opts.chaos, "chaos", "", "DEV ONLY: fault-injection spec, e.g. write=0.3,sync=0.2,rename=0.1,actor=1:25ms")
	flag.Int64Var(&opts.chaosSeed, "chaos-seed", 1, "seed for -chaos fault rolls (reproducible runs)")
	flag.StringVar(&opts.logFormat, "log-format", "text", "log output format: text|json")
	flag.StringVar(&opts.logLevel, "log-level", "info", "minimum log level: debug|info|warn|error")
	flag.IntVar(&opts.traceCap, "trace", 256, "completed-trace ring size served at /debug/traces (-1 = disable tracing)")
	flag.DurationVar(&opts.slowReq, "slow-request", time.Second, "log requests at least this slow at warn level (0 = disabled)")
	flag.BoolVar(&opts.cluster, "cluster", false, "cluster-node mode: honor the gdrproxy placement headers (bind -addr to an internal interface)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "gdrd:", err)
		os.Exit(1)
	}
}

// minLevelHandler raises the minimum level of an inner slog handler —
// -quiet keeps the daemon's own lifecycle logs but silences the per-request
// info lines by handing the server a warn-floored view of the same logger.
type minLevelHandler struct {
	slog.Handler
	min slog.Level
}

func (h minLevelHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return l >= h.min && h.Handler.Enabled(ctx, l)
}

func (h minLevelHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return minLevelHandler{h.Handler.WithAttrs(attrs), h.min}
}

func (h minLevelHandler) WithGroup(name string) slog.Handler {
	return minLevelHandler{h.Handler.WithGroup(name), h.min}
}

// run serves until ctx is cancelled, then drains. ready (optional) receives
// the bound address once listening — tests bind :0 and need the real port.
func run(ctx context.Context, opts options, ready chan<- string) error {
	logger, err := obs.NewLogger(os.Stderr, opts.logFormat, opts.logLevel)
	if err != nil {
		return err
	}
	serverLog := logger
	if opts.quiet {
		serverLog = slog.New(minLevelHandler{logger.Handler(), slog.LevelWarn})
	}
	var tenants []server.TenantConfig
	if opts.keyfile != "" {
		if tenants, err = server.LoadKeyfile(opts.keyfile); err != nil {
			return fmt.Errorf("keyfile: %w", err)
		}
	}
	var faults *faultfs.Injector
	if opts.chaos != "" {
		if faults, err = faultfs.ParseSpec(opts.chaos, opts.chaosSeed); err != nil {
			return err
		}
		logger.Warn(fmt.Sprintf("gdrd: *** CHAOS MODE: injecting faults (%s, seed %d) — never run production like this ***", opts.chaos, opts.chaosSeed))
	}
	srv := server.New(server.Config{
		MaxSessions:     opts.maxSessions,
		TTL:             opts.ttl,
		Workers:         opts.workers,
		Logger:          serverLog,
		DataDir:         opts.dataDir,
		CheckpointEvery: opts.checkpoint,
		Tenants:         tenants,
		RequestTimeout:  opts.deadline,
		QueueDepth:      opts.queueDepth,
		Faults:          faults,
		Trace:           obs.Config{Capacity: opts.traceCap},
		SlowRequest:     opts.slowReq,
		ClusterMode:     opts.cluster,
	})
	defer srv.Close()
	if opts.pprofPort != 0 {
		stopDebug, err := startDebug(opts.pprofPort, srv, logger)
		if err != nil {
			return err
		}
		defer stopDebug()
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	// Slow-client timeouts: a stalled peer must release its connection
	// goroutine instead of holding server state hostage. The write timeout
	// sits above the request deadline so it only fires for clients that
	// stop reading the response, not for slow repairs.
	writeTimeout := 2 * opts.deadline
	if opts.deadline <= 0 {
		writeTimeout = 0
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	logger.Info(fmt.Sprintf("gdrd: serving on %s", ln.Addr()),
		"max_sessions", opts.maxSessions, "ttl", opts.ttl, "workers", opts.workers,
		"data_dir", opts.dataDir, "tenants", len(tenants), "deadline", opts.deadline,
		"sessions", srv.Store().Len(), "trace", opts.traceCap, "log_format", opts.logFormat)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("gdrd: draining", "timeout", opts.drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Close() // stop actors only after in-flight requests completed; flushes final checkpoints
	logger.Info("gdrd: drained, bye")
	return nil
}

// startDebug mounts net/http/pprof and the trace browser on a loopback-only
// port, segregated from the service listener so debug endpoints are never
// reachable through whatever exposure -addr has. The explicit mux avoids the
// pprof package's DefaultServeMux registrations leaking into anything else.
// It returns a stop function closing the listener.
func startDebug(port int, srv *server.Server, logger *slog.Logger) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/traces", srv.TracesHandler())
	ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	logger.Info(fmt.Sprintf("gdrd: debug endpoints on http://%s/debug/", ln.Addr()))
	go func() {
		if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			logger.Warn("gdrd: debug server failed", "err", err)
		}
	}()
	return func() { _ = ln.Close() }, nil
}
