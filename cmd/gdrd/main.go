// Command gdrd serves guided-repair sessions over HTTP — the multi-tenant
// daemon around the paper's interactive Figure 2 loop. Tenants upload a
// dirty CSV instance plus CFD rules, then drive the repair loop remotely:
// ranked groups, per-group updates, batched confirm/reject/retain feedback,
// status and CSV export. See the README's "Serving repairs" section.
//
//	gdrd -addr :8080 -max-sessions 64 -ttl 30m
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight requests and
// session commands finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gdr/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxSessions = flag.Int("max-sessions", 64, "cap on live sessions (-1 = uncapped)")
		ttl         = flag.Duration("ttl", 30*time.Minute, "idle session time-to-live")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "CPU slots shared by all session actors")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
		quiet       = flag.Bool("quiet", false, "disable request logging")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *maxSessions, *ttl, *workers, *drain, *quiet, nil); err != nil {
		fmt.Fprintln(os.Stderr, "gdrd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains. ready (optional) receives
// the bound address once listening — tests bind :0 and need the real port.
func run(ctx context.Context, addr string, maxSessions int, ttl time.Duration, workers int, drain time.Duration, quiet bool, ready chan<- string) error {
	logf := log.Printf
	if quiet {
		logf = nil
	}
	srv := server.New(server.Config{
		MaxSessions: maxSessions,
		TTL:         ttl,
		Workers:     workers,
		Logf:        logf,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	log.Printf("gdrd: serving on %s (max-sessions=%d ttl=%s workers=%d)",
		ln.Addr(), maxSessions, ttl, workers)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("gdrd: draining (timeout %s)...", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Close() // stop actors only after in-flight requests completed
	log.Printf("gdrd: drained, bye")
	return nil
}
