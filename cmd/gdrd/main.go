// Command gdrd serves guided-repair sessions over HTTP — the multi-tenant
// daemon around the paper's interactive Figure 2 loop. Tenants upload a
// dirty CSV instance plus CFD rules, then drive the repair loop remotely:
// ranked groups, per-group updates, batched confirm/reject/retain feedback,
// status and CSV export. See the README's "Serving repairs" section.
//
//	gdrd -addr :8080 -max-sessions 64 -ttl 30m -data-dir /var/lib/gdrd
//
// With -data-dir set, sessions are durable: every feedback round is
// checkpointed to disk, the SIGTERM drain flushes a final checkpoint of
// every live session, and a restarted daemon restores all sessions under
// their original tokens — tenants resume exactly where they left off.
//
// With -pprof PORT, net/http/pprof is served on 127.0.0.1:PORT — loopback
// only, segregated from the service listener — so a live daemon can be
// profiled (CPU, heap, goroutines) without exposing the endpoints to
// tenants.
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight requests and
// session commands finish, checkpoints flush, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gdr/internal/server"
)

// options carries the daemon's flag values.
type options struct {
	addr        string
	maxSessions int
	ttl         time.Duration
	workers     int
	drain       time.Duration
	quiet       bool
	dataDir     string
	checkpoint  time.Duration
	pprofPort   int
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.IntVar(&opts.maxSessions, "max-sessions", 64, "cap on live sessions (-1 = uncapped)")
	flag.DurationVar(&opts.ttl, "ttl", 30*time.Minute, "idle session time-to-live")
	flag.IntVar(&opts.workers, "workers", runtime.GOMAXPROCS(0), "CPU slots shared by all session actors")
	flag.DurationVar(&opts.drain, "drain", 30*time.Second, "graceful shutdown timeout")
	flag.BoolVar(&opts.quiet, "quiet", false, "disable request logging")
	flag.StringVar(&opts.dataDir, "data-dir", "", "directory for durable session snapshots (empty = sessions die with the process)")
	flag.DurationVar(&opts.checkpoint, "checkpoint", 30*time.Second, "periodic checkpoint-retry cadence (with -data-dir)")
	flag.IntVar(&opts.pprofPort, "pprof", 0, "serve net/http/pprof on 127.0.0.1:PORT (0 = disabled)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "gdrd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains. ready (optional) receives
// the bound address once listening — tests bind :0 and need the real port.
func run(ctx context.Context, opts options, ready chan<- string) error {
	logf := log.Printf
	if opts.quiet {
		logf = nil
	}
	if opts.pprofPort != 0 {
		stopProfiler, err := startProfiler(opts.pprofPort)
		if err != nil {
			return err
		}
		defer stopProfiler()
	}
	srv := server.New(server.Config{
		MaxSessions:     opts.maxSessions,
		TTL:             opts.ttl,
		Workers:         opts.workers,
		Logf:            logf,
		DataDir:         opts.dataDir,
		CheckpointEvery: opts.checkpoint,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	log.Printf("gdrd: serving on %s (max-sessions=%d ttl=%s workers=%d data-dir=%q sessions=%d)",
		ln.Addr(), opts.maxSessions, opts.ttl, opts.workers, opts.dataDir, srv.Store().Len())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("gdrd: draining (timeout %s)...", opts.drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Close() // stop actors only after in-flight requests completed; flushes final checkpoints
	log.Printf("gdrd: drained, bye")
	return nil
}

// startProfiler mounts net/http/pprof on a loopback-only port, segregated
// from the service listener so profiling endpoints are never reachable
// through whatever exposure -addr has. The explicit mux avoids the package's
// DefaultServeMux registrations leaking into anything else. It returns a
// stop function closing the listener.
func startProfiler(port int) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	log.Printf("gdrd: pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("gdrd: pprof server: %v", err)
		}
	}()
	return func() { _ = ln.Close() }, nil
}
