package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"gdr"
)

// bootDaemon starts run on a random port and returns its base URL plus a
// shutdown func that triggers the graceful drain and waits for exit.
func bootDaemon(t *testing.T) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			addr:        "127.0.0.1:0",
			maxSessions: 8,
			ttl:         time.Minute,
			workers:     2,
			drain:       5 * time.Second,
			quiet:       true,
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "http://" + addr, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			return fmt.Errorf("daemon did not drain in time")
		}
	}
}

// TestDaemonPprofEndpoint boots the daemon with -pprof on a free loopback
// port and checks the profiling mux answers there — and that nothing was
// mounted on the service listener.
func TestDaemonPprofEndpoint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofPort := ln.Addr().(*net.TCPAddr).Port
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			addr:        "127.0.0.1:0",
			maxSessions: 2,
			ttl:         time.Minute,
			workers:     1,
			drain:       5 * time.Second,
			quiet:       true,
			pprofPort:   pprofPort,
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("drain: %v", err)
		}
	}()

	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/debug/pprof/cmdline", pprofPort))
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
	// The service listener must not expose the profiler.
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("profiler leaked onto the service listener")
	}
}

// TestDaemonEndToEnd boots the daemon, walks one full feedback round over
// the wire (create → groups → updates → feedback → status → delete), and
// shuts down gracefully — the same path the CI smoke job exercises on the
// built binary.
func TestDaemonEndToEnd(t *testing.T) {
	base, shutdown := bootDaemon(t)

	d := gdr.HospitalData(gdr.DataConfig{N: 150, Seed: 4})
	var csvBuf bytes.Buffer
	if err := d.Dirty.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	var rules strings.Builder
	for _, r := range d.Rules {
		rules.WriteString(r.String() + "\n")
	}

	post := func(url string, body any, out any) int {
		b, _ := json.Marshal(body)
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			_ = json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}
	get := func(url string, out any) int {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			_ = json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}

	if code := get(base+"/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	var created struct {
		Session struct {
			ID string `json:"id"`
		} `json:"session"`
		Stats struct {
			Pending int `json:"pending"`
		} `json:"stats"`
	}
	code := post(base+"/v1/sessions", map[string]any{
		"csv": csvBuf.String(), "rules": rules.String(), "seed": 4,
	}, &created)
	if code != 201 || created.Session.ID == "" || created.Stats.Pending == 0 {
		t.Fatalf("create: %d %+v", code, created)
	}
	sessURL := base + "/v1/sessions/" + created.Session.ID

	var groups struct {
		Groups []struct {
			Key string `json:"key"`
		} `json:"groups"`
	}
	if code := get(sessURL+"/groups?order=voi&limit=1", &groups); code != 200 || len(groups.Groups) == 0 {
		t.Fatalf("groups: %d %+v", code, groups)
	}
	var ups struct {
		Updates []struct {
			Tid   int    `json:"tid"`
			Attr  string `json:"attr"`
			Value string `json:"value"`
		} `json:"updates"`
	}
	if code := get(sessURL+"/groups/"+groups.Groups[0].Key+"/updates", &ups); code != 200 || len(ups.Updates) == 0 {
		t.Fatalf("updates: %d %+v", code, ups)
	}
	items := make([]map[string]any, 0, len(ups.Updates))
	for _, u := range ups.Updates {
		verb := "reject"
		if d.Truth.Get(u.Tid, u.Attr) == u.Value {
			verb = "confirm"
		}
		items = append(items, map[string]any{"tid": u.Tid, "attr": u.Attr, "value": u.Value, "feedback": verb})
	}
	var fb struct {
		Stats struct {
			Applied int `json:"applied"`
		} `json:"stats"`
	}
	if code := post(sessURL+"/feedback", map[string]any{"items": items}, &fb); code != 200 {
		t.Fatalf("feedback: %d", code)
	}
	if code := get(sessURL+"/status", nil); code != 200 {
		t.Fatalf("status: %d", code)
	}
	req, _ := http.NewRequest("DELETE", sessURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete: %d", resp.StatusCode)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
}
