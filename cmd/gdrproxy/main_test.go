package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gdr"
	"gdr/internal/core"
	"gdr/internal/server"
)

func TestSplitList(t *testing.T) {
	got := splitList(" http://a:1, ,http://b:2,")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Fatal("empty list should be nil")
	}
}

func TestParseNodeData(t *testing.T) {
	m, err := parseNodeData("http://a:1=/data/a,http://b:2=/data/b")
	if err != nil {
		t.Fatal(err)
	}
	if m["http://a:1"] != "/data/a" || m["http://b:2"] != "/data/b" {
		t.Fatalf("parseNodeData = %v", m)
	}
	for _, bad := range []string{"http://a:1", "=dir", "http://a:1="} {
		if _, err := parseNodeData(bad); err == nil {
			t.Fatalf("parseNodeData(%q) accepted", bad)
		}
	}
}

func TestLoadAdminKey(t *testing.T) {
	if key, err := loadAdminKey(options{adminKey: "flagkey"}); err != nil || key != "flagkey" {
		t.Fatalf("flag key: %q, %v", key, err)
	}
	path := filepath.Join(t.TempDir(), "key")
	if err := os.WriteFile(path, []byte("filekey-123\ntrailing junk\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if key, err := loadAdminKey(options{adminKey: "flagkey", adminKeyFile: path}); err != nil || key != "filekey-123" {
		t.Fatalf("file key overrides flag: %q, %v", key, err)
	}
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, []byte("\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadAdminKey(options{adminKeyFile: empty}); err == nil {
		t.Fatal("empty key file accepted")
	}
	if _, err := loadAdminKey(options{adminKeyFile: filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing key file accepted")
	}
}

// bootClusterNode starts one real cluster-mode gdrd for the daemon test.
func bootClusterNode(t *testing.T) string {
	t.Helper()
	srv := server.New(server.Config{
		ClusterMode: true,
		Workers:     1,
		Session:     core.Config{Workers: 1},
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() {
		_ = hs.Close()
		srv.Close()
	})
	return "http://" + ln.Addr().String()
}

// TestProxyDaemonEndToEnd boots two real gdrd nodes and the gdrproxy
// daemon via run(), creates a session through the gateway, reads it back,
// checks the proxy's own health and metrics surfaces, and drains
// gracefully — the same path cluster_smoke.sh exercises on built binaries.
func TestProxyDaemonEndToEnd(t *testing.T) {
	nodes := bootClusterNode(t) + "," + bootClusterNode(t)

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			addr:        "127.0.0.1:0",
			nodes:       nodes,
			healthEvery: 50 * time.Millisecond,
			failAfter:   2,
			settleGrace: 250 * time.Millisecond,
			drain:       5 * time.Second,
			logFormat:   "text",
			logLevel:    "error",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("proxy exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("proxy never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		LiveNodes int `json:"live_nodes"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != 200 || health.LiveNodes != 2 {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	d := gdr.HospitalData(gdr.DataConfig{N: 80, Seed: 3})
	var csvBuf bytes.Buffer
	if err := d.Dirty.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	var rules strings.Builder
	for _, r := range d.Rules {
		rules.WriteString(r.String() + "\n")
	}
	body, err := json.Marshal(map[string]any{"csv": csvBuf.String(), "rules": rules.String()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created server.CreateSessionResponse
	_ = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if resp.StatusCode != 201 || created.Session.ID == "" {
		t.Fatalf("create through proxy: %d %+v", resp.StatusCode, created)
	}
	resp, err = http.Get(base + "/v1/sessions/" + created.Session.ID + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status through proxy: %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(prom), "gdrproxy_requests_total") {
		t.Fatalf("metrics: %d\n%s", resp.StatusCode, prom)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("proxy did not drain in time")
	}
}

// TestRunRejectsBadConfig covers the flag validation paths.
func TestRunRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, options{logFormat: "text", logLevel: "info"}, nil); err == nil {
		t.Fatal("no -nodes accepted")
	}
	if err := run(ctx, options{
		nodes: "http://a:1", nodeData: "http://other:9=/tmp",
		logFormat: "text", logLevel: "info",
	}, nil); err == nil {
		t.Fatal("-node-data for an unknown node accepted")
	}
	if err := run(ctx, options{nodes: "http://a:1", logFormat: "nope", logLevel: "info"}, nil); err == nil {
		t.Fatal("bad log format accepted")
	}
}
