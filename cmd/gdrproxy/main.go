// Command gdrproxy is the cluster front door: a stateless routing gateway
// that consistent-hashes session tokens across a static set of gdrd nodes
// and migrates sessions live when the ring changes. Clients talk to the
// proxy exactly as they would to a single gdrd — the full /v1 session API
// is forwarded verbatim, streaming bodies included, with tenant auth
// passed through — and never see which node holds their session.
//
//	gdrd     -addr 127.0.0.1:9001 -cluster -data-dir /var/lib/gdrd/n1 &
//	gdrd     -addr 127.0.0.1:9002 -cluster -data-dir /var/lib/gdrd/n2 &
//	gdrproxy -addr :8080 -nodes http://127.0.0.1:9001,http://127.0.0.1:9002 \
//	         -node-data http://127.0.0.1:9001=/var/lib/gdrd/n1,http://127.0.0.1:9002=/var/lib/gdrd/n2
//
// Membership is the -nodes list plus a health loop: a node failing
// -fail-after consecutive probes leaves the ring, and a recovered node
// rejoins (after -fail-after consecutive clean probes — symmetric
// hysteresis, so a flapping node cannot thrash the ring) with a
// rebalance. Session moves use the nodes' own snapshot machinery — drain,
// export, import under the original token, delete the source — so a
// migrated session is byte-identical to one that never moved.
//
// Sessions survive node loss shared-nothing: after every mutating round
// the proxy pushes the session's snapshot, watermarked with its mutation
// sequence, into the replica spill store of the next distinct ring node,
// and an anti-entropy sweep on every health tick re-pushes anything
// missing or lagging. When a node dies, its sessions are promoted from
// the freshest surviving replicas — no access to the dead node's disk
// required. The -node-data url=dir map remains as a fallback for
// sessions without a replica (single-node rings, push lag): those are
// restored from the dead node's snapshot directory when it is reachable
// via a shared filesystem or a loopback deployment.
//
// Against keyfile-authenticated nodes, -admin-key (or -admin-key-file)
// must name an admin tenant's key: the proxy uses it for its own
// migration and replication traffic, and the nodes gate the placement
// headers on it. Client requests keep their own Authorization headers
// either way.
//
// The proxy's own surface: GET /healthz (ring version, per-node health),
// GET /readyz (the load-balancer signal — 503 while a failover or
// migration is in flight or the ring just changed), and GET /metrics
// (per-node request counts, migration counts and latency, replica
// pushes/promotions, ring version) — all served locally, never
// forwarded.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gdr/internal/cluster"
	"gdr/internal/obs"
)

// options carries the proxy's flag values.
type options struct {
	addr         string
	nodes        string
	nodeData     string
	vnodes       int
	healthEvery  time.Duration
	failAfter    int
	settleGrace  time.Duration
	adminKey     string
	adminKeyFile string
	drain        time.Duration
	logFormat    string
	logLevel     string
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.StringVar(&opts.nodes, "nodes", "", "comma-separated gdrd base URLs, e.g. http://127.0.0.1:9001,http://127.0.0.1:9002")
	flag.StringVar(&opts.nodeData, "node-data", "", "comma-separated url=dir pairs mapping each node to its -data-dir (enables dead-node session recovery)")
	flag.IntVar(&opts.vnodes, "vnodes", 0, "virtual nodes per node on the hash ring (0 = default)")
	flag.DurationVar(&opts.healthEvery, "health-every", 500*time.Millisecond, "membership probe cadence")
	flag.IntVar(&opts.failAfter, "fail-after", 3, "consecutive failed probes before a node is declared dead")
	flag.DurationVar(&opts.settleGrace, "settle-grace", 2*time.Second, "window after a ring change in which upstream 404s answer as retryable 503s")
	flag.StringVar(&opts.adminKey, "admin-key", "", "admin bearer key the proxy presents for migration traffic (keyfile-authenticated nodes)")
	flag.StringVar(&opts.adminKeyFile, "admin-key-file", "", "file holding the admin key (first line; overrides -admin-key)")
	flag.DurationVar(&opts.drain, "drain", 30*time.Second, "graceful shutdown timeout")
	flag.StringVar(&opts.logFormat, "log-format", "text", "log output format: text|json")
	flag.StringVar(&opts.logLevel, "log-level", "info", "minimum log level: debug|info|warn|error")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "gdrproxy:", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseNodeData parses the -node-data url=dir pairs.
func parseNodeData(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, pair := range splitList(s) {
		url, dir, ok := strings.Cut(pair, "=")
		if !ok || url == "" || dir == "" {
			return nil, fmt.Errorf("-node-data entry %q is not url=dir", pair)
		}
		out[url] = dir
	}
	return out, nil
}

// loadAdminKey resolves the admin key from the flags.
func loadAdminKey(opts options) (string, error) {
	if opts.adminKeyFile == "" {
		return opts.adminKey, nil
	}
	data, err := os.ReadFile(opts.adminKeyFile)
	if err != nil {
		return "", fmt.Errorf("admin key file: %w", err)
	}
	key, _, _ := strings.Cut(string(data), "\n")
	if key = strings.TrimSpace(key); key == "" {
		return "", fmt.Errorf("admin key file %s is empty", opts.adminKeyFile)
	}
	return key, nil
}

// run serves until ctx is cancelled, then drains. ready (optional) receives
// the bound address once listening — tests bind :0 and need the real port.
func run(ctx context.Context, opts options, ready chan<- string) error {
	logger, err := obs.NewLogger(os.Stderr, opts.logFormat, opts.logLevel)
	if err != nil {
		return err
	}
	nodes := splitList(opts.nodes)
	if len(nodes) == 0 {
		return fmt.Errorf("need -nodes (comma-separated gdrd base URLs)")
	}
	dataDirs, err := parseNodeData(opts.nodeData)
	if err != nil {
		return err
	}
	for url := range dataDirs {
		found := false
		for _, n := range nodes {
			if n == url {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("-node-data names %s, which is not in -nodes", url)
		}
	}
	adminKey, err := loadAdminKey(opts)
	if err != nil {
		return err
	}
	p, err := cluster.New(cluster.Config{
		Nodes:       nodes,
		DataDirs:    dataDirs,
		VNodes:      opts.vnodes,
		AdminKey:    adminKey,
		HealthEvery: opts.healthEvery,
		FailAfter:   opts.failAfter,
		SettleGrace: opts.settleGrace,
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	p.Start()
	defer p.Close()

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           p.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	logger.Info(fmt.Sprintf("gdrproxy: serving on %s", ln.Addr()),
		"nodes", len(nodes), "data_dirs", len(dataDirs), "vnodes", opts.vnodes,
		"health_every", opts.healthEvery, "fail_after", opts.failAfter, "admin", adminKey != "")

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("gdrproxy: draining", "timeout", opts.drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("gdrproxy: drained, bye")
	return nil
}
