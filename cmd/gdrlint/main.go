// Command gdrlint runs the repository's invariant analyzers (internal/lint)
// over a set of packages and exits non-zero if any finding survives
// suppression. It is the multichecker entry point used by CI:
//
//	go run ./cmd/gdrlint ./...
//
// Flags:
//
//	-list         print the analyzers and their docs, then exit
//	-only a,b     run only the named analyzers
//
// Findings print one per line as position: analyzer: message. A finding can
// be silenced in source with `//lint:ignore <analyzer> <reason>` on or
// directly above the offending line; the reason is mandatory and unused
// directives are themselves findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gdr/internal/lint"
	"gdr/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("gdrlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "gdrlint: unknown analyzer %q\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "gdrlint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "gdrlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
