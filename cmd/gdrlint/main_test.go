package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, errw.String())
	}
	for _, name := range []string{"actorconfine", "detrand", "guardedby", "maprange", "pkgdoc"} {
		if !strings.Contains(out.String(), name+": ") {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestOnlyUnknownAnalyzer(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-only", "nosuch"}); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(&out, &errw, []string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}
