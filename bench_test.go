package gdr_test

// Benchmarks regenerating every figure of the paper's evaluation section,
// plus ablation benches for the design choices DESIGN.md calls out and
// micro-benchmarks of the hot substrates. Each figure bench runs the same
// harness the gdrbench CLI uses, at a reduced instance size so `go test
// -bench=.` completes in minutes; pass -benchtime=1x for a single
// regeneration. The CLI reproduces the paper-scale (n = 20000) tables.

import (
	"fmt"
	"io"
	"testing"

	"gdr"
	"gdr/internal/group"
)

// benchN is the per-iteration instance size for the figure benches.
const benchN = 2000

// benchWorkerCounts are the pool sizes every figure bench is run at; the
// workers=1 / workers=4 pair documents the parallel harness's speedup
// (figures are byte-identical across counts, so only time differs).
var benchWorkerCounts = []int{1, 4}

func benchConfig(workers int) gdr.FigureConfig {
	return gdr.FigureConfig{
		N:               benchN,
		Seed:            7,
		Workers:         workers,
		BudgetFractions: []float64{0.1, 0.3, 0.6, 1.0},
	}
}

func benchData(b *testing.B, id int) *gdr.Data {
	b.Helper()
	dc := gdr.DataConfig{N: benchN, Seed: 7}
	if id == 1 {
		return gdr.HospitalData(dc)
	}
	return gdr.CensusData(dc)
}

func benchFigure(b *testing.B, id int, f func(*gdr.Data, gdr.FigureConfig) (gdr.Figure, error)) {
	b.Helper()
	d := benchData(b, id)
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := benchConfig(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fig, err := f(d, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := fig.Render(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3Dataset1 regenerates Figure 3(a): VOI ranking vs Greedy vs
// Random on the hospital data.
func BenchmarkFigure3Dataset1(b *testing.B) { benchFigure(b, 1, gdr.Figure3) }

// BenchmarkFigure3Dataset2 regenerates Figure 3(b) on the census data.
func BenchmarkFigure3Dataset2(b *testing.B) { benchFigure(b, 2, gdr.Figure3) }

// BenchmarkFigure4Dataset1 regenerates Figure 4(a): GDR and its ablations vs
// the automatic heuristic on the hospital data.
func BenchmarkFigure4Dataset1(b *testing.B) { benchFigure(b, 1, gdr.Figure4) }

// BenchmarkFigure4Dataset2 regenerates Figure 4(b) on the census data.
func BenchmarkFigure4Dataset2(b *testing.B) { benchFigure(b, 2, gdr.Figure4) }

// BenchmarkFigure5Dataset1 regenerates Figure 5(a): precision/recall vs user
// effort on the hospital data.
func BenchmarkFigure5Dataset1(b *testing.B) { benchFigure(b, 1, gdr.Figure5) }

// BenchmarkFigure5Dataset2 regenerates Figure 5(b) on the census data.
func BenchmarkFigure5Dataset2(b *testing.B) { benchFigure(b, 2, gdr.Figure5) }

// runOnce executes one strategy run for ablation benches.
func runOnce(b *testing.B, d *gdr.Data, st gdr.Strategy, rc gdr.RunConfig) *gdr.Result {
	b.Helper()
	res, err := gdr.Run(st, d.Dirty, d.Truth, d.Rules, rc)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationForestK varies the committee size k (the paper fixes
// k = 10); the reported metric is the cost of a GDR run at each size.
func BenchmarkAblationForestK(b *testing.B) {
	d := benchData(b, 1)
	for _, k := range []int{1, 5, 10, 20} {
		b.Run(map[int]string{1: "k=1", 5: "k=5", 10: "k=10", 20: "k=20"}[k], func(b *testing.B) {
			var improvement float64
			for i := 0; i < b.N; i++ {
				rc := gdr.RunConfig{Budget: 200, Seed: 3, RecordEvery: 1 << 30}
				rc.Session.Forest.K = k
				improvement = runOnce(b, d, gdr.StrategyGDR, rc).FinalImprovement
			}
			b.ReportMetric(improvement, "improvement%")
		})
	}
}

// BenchmarkAblationGrouping compares the full framework (VOI groups +
// in-group active learning) against the ungrouped Active-Learning pool —
// the paper's Figure 4 argument for grouping.
func BenchmarkAblationGrouping(b *testing.B) {
	d := benchData(b, 1)
	for _, st := range []gdr.Strategy{gdr.StrategyGDR, gdr.StrategyActiveLearning} {
		b.Run(string(st), func(b *testing.B) {
			var improvement float64
			for i := 0; i < b.N; i++ {
				improvement = runOnce(b, d, st, gdr.RunConfig{Budget: 200, Seed: 3, RecordEvery: 1 << 30}).FinalImprovement
			}
			b.ReportMetric(improvement, "improvement%")
		})
	}
}

// BenchmarkAblationRanking compares the three group-ranking policies at a
// fixed budget (Figure 3's comparison as a bench).
func BenchmarkAblationRanking(b *testing.B) {
	d := benchData(b, 1)
	for _, st := range []gdr.Strategy{gdr.StrategyGDRNoLearning, gdr.StrategyGreedy, gdr.StrategyRandom} {
		b.Run(string(st), func(b *testing.B) {
			var improvement float64
			for i := 0; i < b.N; i++ {
				improvement = runOnce(b, d, st, gdr.RunConfig{Budget: 300, Seed: 3, RecordEvery: 1 << 30}).FinalImprovement
			}
			b.ReportMetric(improvement, "improvement%")
		})
	}
}

// BenchmarkAblationBatchSize varies ns, the number of labels per interactive
// round before the committee is retrained.
func BenchmarkAblationBatchSize(b *testing.B) {
	d := benchData(b, 1)
	for _, ns := range []int{1, 5, 10, 25} {
		b.Run(map[int]string{1: "ns=1", 5: "ns=5", 10: "ns=10", 25: "ns=25"}[ns], func(b *testing.B) {
			var improvement float64
			for i := 0; i < b.N; i++ {
				rc := gdr.RunConfig{Budget: 200, Seed: 3, RecordEvery: 1 << 30}
				rc.Session.BatchSize = ns
				improvement = runOnce(b, d, gdr.StrategyGDR, rc).FinalImprovement
			}
			b.ReportMetric(improvement, "improvement%")
		})
	}
}

// BenchmarkSessionBootstrap measures building a session over a dirty
// instance: violation indexes plus the initial update-generation pass.
func BenchmarkSessionBootstrap(b *testing.B) {
	d := benchData(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := gdr.NewSession(d.Dirty.Clone(), d.Rules, gdr.SessionConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if sess.PendingCount() == 0 {
			b.Fatal("no updates")
		}
	}
}

// groupsBenchSession builds a session over the 2000-row hospital workload
// and performs one cold VOI ranking, leaving every cache warm.
func groupsBenchSession(b *testing.B, workers int) *gdr.Session {
	b.Helper()
	d := benchData(b, 1)
	sess, err := gdr.NewSession(d.Dirty.Clone(), d.Rules, gdr.SessionConfig{Seed: 1, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	if len(sess.Groups(gdr.OrderVOI, nil)) == 0 {
		b.Fatal("no groups")
	}
	return sess
}

// BenchmarkGroupsWarm measures the steady-state poll: Groups(OrderVOI) with
// no intervening feedback. The incremental group index answers it from the
// cached ranking — this is the per-request cost every /groups poll pays at
// the serving tier between feedback rounds.
func BenchmarkGroupsWarm(b *testing.B) {
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sess := groupsBenchSession(b, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(sess.Groups(gdr.OrderVOI, nil)) == 0 {
					b.Fatal("no groups")
				}
			}
		})
	}
}

// BenchmarkGroupsRebuild measures the same steady-state poll through the
// rebuild-from-scratch path the index replaced (partition the flat pending
// list, re-score every group, full sort) — the before side of the
// BENCH_5.json comparison, kept runnable because the lockstep equivalence
// tests define correctness against it.
func BenchmarkGroupsRebuild(b *testing.B) {
	sess := groupsBenchSession(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs := group.Partition(sess.PendingUpdates())
		sess.Ranker().Rank(gs, sess.Prob)
		if len(gs) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkFeedbackRound measures one whole interactive cycle — rank the
// groups, answer a batch of ns=10 updates from the top group through the
// consistency manager (learner in the loop), re-rank — the unit of work a
// serving-tier feedback round performs.
func BenchmarkFeedbackRound(b *testing.B) {
	d := benchData(b, 1)
	newSess := func() *gdr.Session {
		sess, err := gdr.NewSession(d.Dirty.Clone(), d.Rules, gdr.SessionConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return sess
	}
	sess := newSess()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs := sess.Groups(gdr.OrderVOI, nil)
		if len(gs) == 0 {
			b.StopTimer()
			sess = newSess()
			b.StartTimer()
			gs = sess.Groups(gdr.OrderVOI, nil)
		}
		batch := gs[0].Updates
		if len(batch) > 10 {
			batch = batch[:10]
		}
		for _, u := range batch {
			cur, ok := sess.Pending(u.Cell())
			if !ok || cur != u {
				continue
			}
			switch tv := d.Truth.Get(u.Tid, u.Attr); {
			case u.Value == tv:
				sess.UserFeedback(u, gdr.Confirm)
			case sess.DB().Get(u.Tid, u.Attr) == tv:
				sess.UserFeedback(u, gdr.Retain)
			default:
				sess.UserFeedback(u, gdr.Reject)
			}
		}
	}
}

// BenchmarkDiscovery measures constant-CFD mining at 5% support.
func BenchmarkDiscovery(b *testing.B) {
	d := benchData(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rules := gdr.DiscoverRules(d.Dirty, 0.05); len(rules) == 0 {
			b.Fatal("no rules")
		}
	}
}

// BenchmarkHeuristicRepair measures the fully automatic baseline end to end.
func BenchmarkHeuristicRepair(b *testing.B) {
	d := benchData(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce(b, d, gdr.StrategyHeuristic, gdr.RunConfig{RecordEvery: 1 << 30})
	}
}

// BenchmarkAblationBalancedBootstrap compares class-balanced vs plain
// bootstrap sampling in the committee (DESIGN.md substitution 8).
func BenchmarkAblationBalancedBootstrap(b *testing.B) {
	d := benchData(b, 1)
	for _, unbalanced := range []bool{false, true} {
		name := "balanced"
		if unbalanced {
			name = "unbalanced"
		}
		b.Run(name, func(b *testing.B) {
			var improvement float64
			for i := 0; i < b.N; i++ {
				rc := gdr.RunConfig{Budget: 200, Seed: 3, RecordEvery: 1 << 30}
				rc.Session.Forest.Unbalanced = unbalanced
				improvement = runOnce(b, d, gdr.StrategyGDR, rc).FinalImprovement
			}
			b.ReportMetric(improvement, "improvement%")
		})
	}
}

// BenchmarkAblationDelegationGate varies the committee-confidence gate for
// learner confirms (DESIGN.md substitution 7b).
func BenchmarkAblationDelegationGate(b *testing.B) {
	d := benchData(b, 1)
	for _, gate := range []float64{0.51, 0.55, 0.7, 0.9} {
		b.Run(map[float64]string{0.51: "gate=0.51", 0.55: "gate=0.55", 0.7: "gate=0.70", 0.9: "gate=0.90"}[gate], func(b *testing.B) {
			var improvement float64
			for i := 0; i < b.N; i++ {
				rc := gdr.RunConfig{Budget: 200, Seed: 3, RecordEvery: 1 << 30}
				rc.Session.MinDelegate = gate
				improvement = runOnce(b, d, gdr.StrategyGDR, rc).FinalImprovement
			}
			b.ReportMetric(improvement, "improvement%")
		})
	}
}
